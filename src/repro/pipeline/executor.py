"""Pluggable executors: how the pipeline fans campaign tasks out.

Three strategies cover the deployment spectrum:

* `SerialExecutor` - one task at a time, in submission order.  The
  reference semantics every other executor must match (the parity
  tests compare their `Vulnerability` sets against it).
* `ThreadExecutor` - a thread pool.  Campaign work is pure Python, so
  threads mostly help when system emulation waits on the (emulated)
  OS; it is also the cheapest way to exercise the cache's thread
  safety.
* `ProcessExecutor` - a process pool (`fork` where available).  Real
  multi-core speedup; tasks and results cross a pickle boundary, so
  process tasks are dispatched by system *name* and rebuilt in the
  worker rather than shipped as closures.

All executors preserve input order in their results, so downstream
aggregation never depends on scheduling.

Beyond plain `map`, every executor offers `map_resilient`: a
supervised fan-out that detects worker death (`BrokenProcessPool`)
and shard watchdog timeouts, re-enqueues failed shards with capped
exponential backoff + deterministic jitter (`RetryPolicy`), and
quarantines shards that exhaust their attempts into structured
`FailedShard` records instead of aborting the run.  Recovery events
surface as ``resilience.*`` counters through ``repro.obs``.
"""

from __future__ import annotations

import gc
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import get_registry
from repro.resilience import FailedShard, ResilientMapResult, RetryPolicy

T = TypeVar("T")
R = TypeVar("R")


def _default_workers() -> int:
    return max(2, min(8, (os.cpu_count() or 2)))


def _chaos_invoke(fn, item, chaos, key: str, allow_kill: bool):
    """Run one shard, letting an armed chaos schedule perturb it
    first.  Module-level (not a closure) so process pools can pickle
    it; `allow_kill` is True only when this runs inside a disposable
    pool worker."""
    if chaos is not None:
        chaos.perturb(key, allow_kill=allow_kill)
    return fn(item)


def _chaos_call(packed):
    """Pickle-friendly single-argument form of `_chaos_invoke`."""
    return _chaos_invoke(*packed)


def _shard_label(label: str, index: int) -> str:
    return f"{label}:{index}" if label else str(index)


class Executor:
    """Strategy interface: apply `fn` to each item, results in order."""

    name = "base"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        raise NotImplementedError

    def map_resilient(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        policy: RetryPolicy,
        chaos=None,
        label: str = "",
    ) -> ResilientMapResult:
        """Supervised `map`: per-shard retries with backoff, watchdog
        timeouts where enforceable, quarantine after `max_attempts`.
        Results stay aligned with `items`; a quarantined shard's slot
        is None and its `FailedShard` lands in ``failures``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.__class__.__name__} {self.name!r}>"


class SerialExecutor(Executor):
    name = "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return [fn(item) for item in items]

    def map_resilient(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        policy: RetryPolicy,
        chaos=None,
        label: str = "",
    ) -> ResilientMapResult:
        """Serial supervision: exceptions retry with backoff; there is
        no watchdog (a serial shard cannot be interrupted from the
        same thread), so `policy.timeout` is not enforced here."""
        items = list(items)
        registry = get_registry()
        results: list = [None] * len(items)
        failures: list[FailedShard] = []
        retries = 0
        for index, item in enumerate(items):
            shard = _shard_label(label, index)
            for attempt in range(1, policy.max_attempts + 1):
                try:
                    results[index] = _chaos_invoke(
                        fn, item, chaos, f"{shard}|a{attempt}", False
                    )
                    break
                except Exception as exc:
                    registry.inc("resilience.shard_failures")
                    if attempt >= policy.max_attempts:
                        registry.inc("resilience.quarantined")
                        failures.append(
                            FailedShard(
                                index=index,
                                label=shard,
                                attempts=attempt,
                                error_kind=type(exc).__name__,
                                detail=str(exc),
                            )
                        )
                    else:
                        retries += 1
                        registry.inc("resilience.retries")
                        time.sleep(policy.delay_for(attempt, shard))
        return ResilientMapResult(results, failures, retries)


class ThreadExecutor(Executor):
    name = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers or _default_workers()

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            return list(pool.map(fn, items))

    def map_resilient(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        policy: RetryPolicy,
        chaos=None,
        label: str = "",
    ) -> ResilientMapResult:
        """Thread supervision: watchdog timeouts are enforced on the
        `future.result` wait.  A timed-out shard's thread cannot be
        killed — it keeps running to completion in the background —
        but its result is discarded and the shard is re-enqueued, so
        one stalled shard never wedges the run."""
        return _supervise_pool(
            lambda workers: ThreadPoolExecutor(max_workers=workers),
            self.max_workers,
            fn,
            items,
            policy,
            chaos,
            label,
            allow_kill=False,
        )


def _freeze_inherited_heap() -> None:
    """Worker initializer: move every object inherited from the parent
    (programs, caches, prior results) into the permanent generation.
    Without this, each GC collection in a worker walks the parent's
    whole heap, which can make forked campaigns slower than serial."""
    gc.freeze()


class ProcessExecutor(Executor):
    """Process-pool fan-out.  `fn` and every item/result must pickle;
    the pipeline honours this by sending system names, not systems."""

    name = "process"

    def __init__(self, max_workers: int | None = None) -> None:
        # Campaign work is CPU-bound: more workers than cores only adds
        # scheduling and fork overhead (unlike the thread pool, where
        # oversubscription is harmless).
        self.max_workers = max_workers or max(1, os.cpu_count() or 1)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        workers = min(self.max_workers, len(items))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_freeze_inherited_heap
        ) as pool:
            return list(pool.map(fn, items))

    def map_resilient(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        policy: RetryPolicy,
        chaos=None,
        label: str = "",
    ) -> ResilientMapResult:
        """Process supervision: a SIGKILL'd worker surfaces as
        `BrokenProcessPool` — every unfinished shard of that pool
        counts one failed attempt and the pool is rebuilt for the next
        round.  Watchdog timeouts abandon the stalled pool (shut down
        without waiting) and re-enqueue the unfinished shards on a
        fresh one."""
        return _supervise_pool(
            lambda workers: ProcessPoolExecutor(
                max_workers=workers, initializer=_freeze_inherited_heap
            ),
            self.max_workers,
            fn,
            items,
            policy,
            chaos,
            label,
            allow_kill=True,
        )


def _supervise_pool(
    pool_factory,
    max_workers: int,
    fn,
    items: Iterable,
    policy: RetryPolicy,
    chaos,
    label: str,
    allow_kill: bool,
) -> ResilientMapResult:
    """Round-based supervision shared by the thread and process
    executors.

    Each round submits every pending shard to a fresh pool and waits
    for each future up to `policy.timeout` (measured per wait — an
    upper bound on the shard's run time, since all futures execute
    concurrently).  Failures are retried with capped backoff +
    deterministic jitter on the next round; shards that exhaust
    `policy.max_attempts` are quarantined as `FailedShard` records.
    """
    items = list(items)
    registry = get_registry()
    results: list = [None] * len(items)
    finished = [False] * len(items)
    attempts = [0] * len(items)
    last_error: dict[int, tuple[str, str]] = {}
    failures: list[FailedShard] = []
    retries = 0
    pending = list(range(len(items)))
    while pending:
        pool = pool_factory(min(max_workers, len(pending)))
        abandoned = False
        futures = {}
        for index in pending:
            attempts[index] += 1
            shard = _shard_label(label, index)
            key = f"{shard}|a{attempts[index]}"
            futures[index] = pool.submit(
                _chaos_invoke, fn, items[index], chaos, key, allow_kill
            )
        for index, future in futures.items():
            try:
                results[index] = future.result(timeout=policy.timeout)
                finished[index] = True
            except TimeoutError:
                if future.done():  # the shard itself raised TimeoutError
                    registry.inc("resilience.shard_failures")
                    last_error[index] = ("TimeoutError", "shard raised")
                else:
                    abandoned = True
                    registry.inc("resilience.timeouts")
                    last_error[index] = (
                        "timeout",
                        f"exceeded the {policy.timeout}s watchdog deadline",
                    )
            except BrokenProcessPool as exc:
                # One worker died (SIGKILL, OOM, segfault); the pool is
                # poisoned and every unfinished sibling fails with it.
                registry.inc("resilience.worker_crashes")
                last_error[index] = (type(exc).__name__, str(exc))
            except Exception as exc:
                registry.inc("resilience.shard_failures")
                last_error[index] = (type(exc).__name__, str(exc))
        # A stalled shard's worker cannot be joined promptly: abandon
        # the pool (cancel what never started, don't wait for the
        # stall) and let the fresh pool take the retries.
        pool.shutdown(wait=not abandoned, cancel_futures=True)
        still_pending = []
        for index in pending:
            if finished[index]:
                continue
            shard = _shard_label(label, index)
            if attempts[index] >= policy.max_attempts:
                registry.inc("resilience.quarantined")
                kind, detail = last_error.get(index, ("unknown", ""))
                failures.append(
                    FailedShard(
                        index=index,
                        label=shard,
                        attempts=attempts[index],
                        error_kind=kind,
                        detail=detail,
                    )
                )
            else:
                still_pending.append(index)
        if still_pending:
            retries += len(still_pending)
            registry.inc("resilience.retries", len(still_pending))
            time.sleep(
                policy.delay_for(attempts[still_pending[0]], label)
            )
        pending = still_pending
    return ResilientMapResult(results, failures, retries)


_EXECUTORS: dict[str, Callable[[int | None], Executor]] = {
    "serial": lambda workers: SerialExecutor(),
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def executor_names() -> Sequence[str]:
    return tuple(_EXECUTORS)


def resolve_executor(
    spec: str | Executor, max_workers: int | None = None
) -> Executor:
    """Accept either an `Executor` instance or one of the registered
    names ("serial", "thread", "process")."""
    if isinstance(spec, Executor):
        return spec
    try:
        factory = _EXECUTORS[spec]
    except KeyError:
        raise ValueError(
            f"unknown executor {spec!r}; choose from {', '.join(_EXECUTORS)}"
        ) from None
    return factory(max_workers)
