"""Content-addressed caches for the campaign pipeline.

Inference dominates nothing (campaigns do), but it is the part that is
*pure*: the same (program sources, annotations, options) triple always
produces the same `SpexReport`.  The pipeline therefore keys inference
results by a content hash of exactly that triple, so repeated
campaigns, ablation sweeps and multi-executor parity runs skip
re-inference entirely.  A second, optional layer caches whole
`CampaignReport`s keyed by the inference fingerprint plus the
generator-rule set, which makes a warm pipeline re-run almost free.
A third layer, the `LaunchCache`, works at the opposite end of the
stack: individual interpreter launches keyed by (system, config text,
requests, interpreter options), so injections that serialize to
identical configs - and every repeated baseline launch - share one
interpreter run.  A fourth, the `SnapshotCache`, backs the launch
engine's warm-boot replay (`repro.runtime.snapshot`): per-config boot
records keyed by (system, config text, options), shared across
harnesses so one config's boot prefix is interpreted at most twice per
process no matter how many launches replay it.

Keys are SHA-256 hex digests; a changed source file, annotation block
or `SpexOptions` knob yields a new key, so stale entries are never
served (they are merely unreferenced).

Usage::

    cache = InferenceCache()
    key = spex_fingerprint(system.sources, system.annotations, options)
    report = cache.get_or_compute(key, lambda: engine.run())
    cache.stats.hits, cache.stats.misses
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Callable, Generic, TypeVar

from repro.core.engine import SpexOptions, SpexReport
from repro.obs.metrics import get_registry
from repro.runtime.snapshot import (
    BootRecord,
    BootSnapshot,
    BootStats,
    BoundaryHint,
)

T = TypeVar("T")


def spex_fingerprint(
    sources: dict[str, str],
    annotations: str,
    options: SpexOptions | None = None,
) -> str:
    """Content hash of one inference job.

    The key covers everything `SpexEngine` reads: every source file
    (name and text, order-independent), the mapping annotations, and
    the full option set via `SpexOptions.fingerprint()`.
    """
    digest = hashlib.sha256()
    for filename in sorted(sources):
        digest.update(filename.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(sources[filename].encode("utf-8"))
        digest.update(b"\x00")
    digest.update(annotations.encode("utf-8"))
    digest.update(b"\x00")
    digest.update((options or SpexOptions()).fingerprint().encode("utf-8"))
    return digest.hexdigest()


def campaign_fingerprint(spex_key: str, roster: list[str]) -> str:
    """Key of one full campaign: the inference key plus the qualified
    generation-rule roster (`GeneratorRegistry.roster()`).  A changed
    plug-in set - including a same-named plug-in with a different
    implementing class - must invalidate cached campaign results even
    when inference is unchanged."""
    digest = hashlib.sha256()
    digest.update(spex_key.encode("utf-8"))
    for rule in sorted(roster):
        digest.update(b"\x00")
        digest.update(rule.encode("utf-8"))
    return digest.hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    peeks: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "peeks": self.peeks,
        }

    def absorb(self, delta: dict[str, int]) -> None:
        """Fold a snapshot-shaped delta in (how counters observed in a
        worker process reach the parent's stats)."""
        self.hits += delta.get("hits", 0)
        self.misses += delta.get("misses", 0)
        self.invalidations += delta.get("invalidations", 0)
        self.peeks += delta.get("peeks", 0)


class ContentCache(Generic[T]):
    """A thread-safe content-addressed store with hit/miss counters.

    Values are immutable-by-convention: callers must not mutate a
    cached object after `put`, because later `get`s return the same
    instance (executor-parity tests rely on this determinism).
    """

    def __init__(self) -> None:
        self._entries: dict[str, T] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        # Taken under the lock: len()/containment race with worker
        # threads mutating `_entries` (dict resizing mid-read raises
        # RuntimeError under free-threaded builds and returns torn
        # observations everywhere else).
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> T | None:
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return value

    def peek(self, key: str) -> T | None:
        """Read without touching the hit/miss counters - for
        bookkeeping reads of entries some earlier call populated (the
        counters exist to measure *work avoided*, not lookups).  Peeks
        get their own counter so warm-path reads (the serve tier, the
        fleet's context probe) stay visible in the metrics registry
        without polluting the work-avoided signal."""
        with self._lock:
            self.stats.peeks += 1
            return self._entries.get(key)

    def put(self, key: str, value: T) -> T:
        with self._lock:
            self._entries[key] = value
            return value

    def get_or_compute(self, key: str, factory: Callable[[], T]) -> T:
        """Return the cached value, computing and storing it on miss.

        The factory runs outside the lock: inference takes orders of
        magnitude longer than a dict probe, and two threads racing on
        the same key at worst duplicate one pure computation.
        """
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                return self._entries[key]
            self.stats.misses += 1
        value = factory()
        with self._lock:
            return self._entries.setdefault(key, value)

    def absorb_stats(self, delta: dict[str, int]) -> None:
        """Fold a worker process's counter delta in, under the lock
        (concurrent campaigns absorb into one shared cache)."""
        with self._lock:
            self.stats.absorb(delta)

    def invalidate(self, key: str) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            if existed:
                self.stats.invalidations += 1
            return existed

    def clear(self) -> None:
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()


class InferenceCache(ContentCache[SpexReport]):
    """`SpexReport`s keyed by `spex_fingerprint`."""

    def key_for(self, system, options: SpexOptions | None = None) -> str:
        """Key of one subject system's inference job (duck-typed: any
        object with `.sources` and `.annotations` works)."""
        return spex_fingerprint(system.sources, system.annotations, options)


def launch_fingerprint(
    system_name: str,
    config_text: str,
    requests: tuple[str, ...] = (),
    options_fingerprint: str = "",
) -> str:
    """Content hash of one interpreter launch.

    The key covers everything that determines a `ProcessResult` for a
    registered system: which system runs (its program and OS fixtures
    are a deterministic function of the name within one process), the
    rendered config text installed before boot, the exact request
    sequence driven through it, and the interpreter budget knobs via
    `InterpreterOptions.fingerprint()`.  Launches are pure - the
    emulated OS has no real clock or randomness - so two launches with
    equal keys produce interchangeable results.
    """
    digest = hashlib.sha256()
    digest.update(system_name.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(config_text.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(str(len(requests)).encode("utf-8"))
    for request in requests:
        digest.update(b"\x00")
        digest.update(request.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(options_fingerprint.encode("utf-8"))
    return digest.hexdigest()


class LaunchCache(ContentCache):
    """`ProcessResult`s keyed by `launch_fingerprint`.

    This is the injection hot path's cache: a campaign launches the
    interpreter once per startup plus once per functional test, and
    identical (config text, requests) pairs recur - several generation
    rules can serialize to the same erroneous config, re-runs repeat
    every baseline launch, and ablation sweeps repeat whole campaigns.
    All of those share one interpreter run.

    Cached `ProcessResult`s follow the store's immutable-by-convention
    contract; the harness slims request-driven results (drops the
    interpreter snapshot) *before* insertion, never after.
    """

    def key_for(
        self,
        system,
        config_text: str,
        requests: list[str] | None,
        options,
        options_fingerprint: str | None = None,
    ) -> str:
        """Key of one launch of a subject system (duck-typed: any
        object with a `.name` works; `options` needs `fingerprint()`).
        Callers on a hot path may pass a precomputed
        `options_fingerprint` to skip re-hashing unchanged options."""
        return launch_fingerprint(
            system.name,
            config_text,
            tuple(requests or ()),
            options_fingerprint
            if options_fingerprint is not None
            else options.fingerprint(),
        )


def snapshot_fingerprint(
    system_name: str,
    config_text: str,
    options_fingerprint: str,
    argv: tuple[str, ...] = (),
) -> str:
    """Key of one warm-boot record (`repro.runtime.snapshot`).

    Covers everything the boot prefix reads: which system boots (its
    program and OS fixtures are deterministic per name), the rendered
    config text, the launch argv (main's boot code reads it), and the
    interpreter knobs - including the engine, so tree and compiled
    launches never share a snapshot.  The request queue is
    deliberately absent: boot state is request-independent by the
    boundary's definition.
    """
    digest = hashlib.sha256()
    digest.update(b"boot\x00")
    digest.update(system_name.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(config_text.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(str(len(argv)).encode("utf-8"))
    for arg in argv:
        digest.update(b"\x00")
        digest.update(arg.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(options_fingerprint.encode("utf-8"))
    return digest.hexdigest()


class SnapshotCache(ContentCache[BootRecord]):
    """`BootRecord`s keyed by `snapshot_fingerprint`.

    Shared across harnesses (campaign batches, the fleet agreement
    sampler) so one config's boot prefix is interpreted at most twice
    per process - probe and capture - no matter how many launches
    replay it.  Records are mutated in place by the snapshot engine;
    all transitions derive from deterministic runs, so concurrent
    writers can only race to store equivalent values.  `boot_stats`
    counts resumes/boots/captures - the hit/miss counters of the base
    class are unused (records are bookkeeping containers, not results).
    """

    def __init__(self) -> None:
        super().__init__()
        self.boot_stats = BootStats()
        self._hints: dict[tuple[str, str], BoundaryHint] = {}

    def key_for(
        self,
        system,
        config_text: str,
        options,
        options_fingerprint: str | None = None,
        argv: tuple[str, ...] = (),
    ) -> str:
        """Key of one system config's boot record (duck-typed like
        `LaunchCache.key_for`)."""
        return snapshot_fingerprint(
            system.name,
            config_text,
            options_fingerprint
            if options_fingerprint is not None
            else options.fingerprint(),
            argv=argv,
        )

    def record_for(self, key: str) -> BootRecord:
        """The record under `key`, created empty on first use (no
        hit/miss accounting - `boot_stats` measures the work)."""
        with self._lock:
            record = self._entries.get(key)
            if record is None:
                record = self._entries[key] = BootRecord()
            return record

    def hint_for(
        self, system_name: str, options_fingerprint: str
    ) -> BoundaryHint:
        """The speculative boot-boundary hint shared by all configs of
        one (system, options) pair."""
        key = (system_name, options_fingerprint)
        with self._lock:
            hint = self._hints.get(key)
            if hint is None:
                hint = self._hints[key] = BoundaryHint()
            return hint

    def absorb_boot_stats(self, delta: dict[str, int]) -> None:
        """Fold a worker process's snapshot-engine counters in."""
        with self._lock:
            self.boot_stats.absorb(delta)

    def export_snapshots(self) -> dict[str, tuple[int, bytes]]:
        """Every resumable record as (boundary, transport blob), keyed
        like the records - the shared-memory `SnapshotPool`'s feed.
        Records whose bundle does not pickle are skipped (workers boot
        those configs cold, exactly as they would have without a pool).
        """
        with self._lock:
            entries = list(self._entries.items())
        out: dict[str, tuple[int, bytes]] = {}
        for key, record in entries:
            snapshot = record.snapshot
            if snapshot is None:
                continue
            blob = snapshot.to_blob()
            if blob is not None:
                out[key] = (snapshot.boundary, blob)
        return out

    def preload_snapshot(self, key: str, boundary: int, blob: bytes) -> None:
        """Plant a ready-to-resume record fetched from a snapshot pool
        (worker side; an existing record wins - it is at least as
        warm)."""
        with self._lock:
            if key not in self._entries:
                self._entries[key] = BootRecord(
                    probed=True,
                    boundary=boundary,
                    snapshot=BootSnapshot(boundary=boundary, blob=blob),
                )


def checker_fingerprint(
    spex_key: str, default_config: str, dialect_repr: str
) -> str:
    """Key of one compiled config checker (`repro.checker.compile`):
    the inference fingerprint plus everything else compilation reads -
    the vendor template (calibration baseline and cross-parameter
    defaults) and the config dialect."""
    digest = hashlib.sha256()
    digest.update(spex_key.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(default_config.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(dialect_repr.encode("utf-8"))
    return digest.hexdigest()


@dataclass
class PipelineCaches:
    """The cache layers one pipeline (or several, sharing) uses.

    `checkers` holds `CompiledChecker`s keyed by `checker_fingerprint`
    - the fleet validator's layer: re-checking a config fleet against
    an unchanged program re-infers and re-compiles nothing.
    """

    inference: InferenceCache = field(default_factory=InferenceCache)
    campaigns: ContentCache = field(default_factory=ContentCache)
    launches: LaunchCache = field(default_factory=LaunchCache)
    checkers: ContentCache = field(default_factory=ContentCache)
    snapshots: SnapshotCache = field(default_factory=SnapshotCache)

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-layer counters, routed through the metrics registry.

        Every counter is published as a ``cache.<layer>.<counter>``
        gauge on the process registry (`repro.obs`) and the returned
        mapping is read *back* from those gauges, so report footers,
        ``--json`` payloads and the serve ``metrics`` op all draw from
        one source.  The shape is byte-compatible with the
        pre-registry dict-of-snapshots form.
        """
        registry = get_registry()
        sections = {
            "inference": self.inference.stats.snapshot(),
            "campaigns": self.campaigns.stats.snapshot(),
            "launches": self.launches.stats.snapshot(),
            "checkers": self.checkers.stats.snapshot(),
            "snapshots": self.snapshots.boot_stats.snapshot(),
        }
        for layer, counters in sections.items():
            for name, value in counters.items():
                registry.gauge(f"cache.{layer}.{name}", value)
        return {
            layer: {
                name: registry.gauge_value(f"cache.{layer}.{name}")
                for name in counters
            }
            for layer, counters in sections.items()
        }
