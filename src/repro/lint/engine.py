"""Aggregate design-lint report for one subject system."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import SpexReport
from repro.lint.detectors import (
    CaseSensitivityFinding,
    OverrulingFinding,
    UndocumentedFinding,
    UnitFinding,
    UnsafeApiFinding,
    detect_case_sensitivity,
    detect_silent_overruling,
    detect_undocumented,
    detect_unit_inconsistency,
    detect_unsafe_apis,
)
from repro.systems.base import SubjectSystem


@dataclass
class DesignLintReport:
    system: str
    case_sensitivity: CaseSensitivityFinding = field(
        default_factory=CaseSensitivityFinding
    )
    units: UnitFinding = field(default_factory=UnitFinding)
    overruling: OverrulingFinding = field(default_factory=OverrulingFinding)
    unsafe: UnsafeApiFinding = field(default_factory=UnsafeApiFinding)
    undocumented: UndocumentedFinding = field(default_factory=UndocumentedFinding)

    def error_prone_count(self) -> int:
        """Distinct error-prone constraints (Table 8-style counting:
        overruled params + unsafe params + undocumented entries)."""
        return (
            len(self.overruling.params)
            + len(self.unsafe.affected)
            + len(self.undocumented.ranges)
            + len(self.undocumented.control_deps)
            + len(self.undocumented.value_rels)
        )


def lint_system(
    system: SubjectSystem, spex_report: SpexReport | None = None
) -> DesignLintReport:
    if spex_report is None:
        from repro.inject.campaign import Campaign

        spex_report = Campaign(system).run_spex()
    return DesignLintReport(
        system=system.name,
        case_sensitivity=detect_case_sensitivity(spex_report),
        units=detect_unit_inconsistency(spex_report),
        overruling=detect_silent_overruling(spex_report),
        unsafe=detect_unsafe_apis(spex_report),
        undocumented=detect_undocumented(spex_report, system.manual),
    )
