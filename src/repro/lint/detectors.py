"""The five §3.2 detectors, each a function over a SpexReport."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.analysis.events import CallArgEvent
from repro.core.constraints import (
    ControlDepConstraint,
    EnumRangeConstraint,
    NumericRangeConstraint,
    ValueRelConstraint,
)
from repro.core.engine import SpexReport
from repro.knowledge import ApiKnowledge, SemanticType, Unit, default_knowledge


# -- case sensitivity (Table 6) -----------------------------------------------


@dataclass
class CaseSensitivityFinding:
    sensitive: list[str] = field(default_factory=list)
    insensitive: list[str] = field(default_factory=list)

    @property
    def inconsistent(self) -> bool:
        """Mixed requirements confuse users (Figure 6a): some string
        parameters demand exact case while most do not."""
        return bool(self.sensitive) and bool(self.insensitive)

    @property
    def minority(self) -> list[str]:
        """The parameters on the smaller side of the split - the ones
        a consistency fix would change."""
        if not self.inconsistent:
            return []
        if len(self.sensitive) <= len(self.insensitive):
            return self.sensitive
        return self.insensitive


def detect_case_sensitivity(report: SpexReport) -> CaseSensitivityFinding:
    finding = CaseSensitivityFinding()
    for param, sensitive in sorted(report.case_sensitivity.items()):
        if param.startswith("__SPEX_"):
            continue
        if sensitive:
            finding.sensitive.append(param)
        else:
            finding.insensitive.append(param)
    return finding


# -- unit granularity (Table 7) ----------------------------------------------

_UNIT_NAME_TOKENS = {
    "b": Unit.BYTES,
    "kb": Unit.KILOBYTES,
    "mb": Unit.MEGABYTES,
    "gb": Unit.GIGABYTES,
    "usec": Unit.MICROSECONDS,
    "msec": Unit.MILLISECONDS,
    "ms": Unit.MILLISECONDS,
    "sec": Unit.SECONDS,
    "s": Unit.SECONDS,
    "min": Unit.MINUTES,
    "hour": Unit.HOURS,
    "h": Unit.HOURS,
}


@dataclass
class UnitFinding:
    # dimension ("size"/"time") -> unit -> parameter list
    by_dimension: dict[str, dict[Unit, list[str]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(list))
    )
    # parameters whose *names* carry their unit (§5.2 mitigation)
    unit_named: list[str] = field(default_factory=list)

    def inconsistent_dimensions(self) -> list[str]:
        return [
            dim
            for dim, units in self.by_dimension.items()
            if len(units) > 1
        ]

    def distribution(self, dimension: str) -> dict[Unit, int]:
        return {
            unit: len(params)
            for unit, params in self.by_dimension.get(dimension, {}).items()
        }


def detect_unit_inconsistency(report: SpexReport) -> UnitFinding:
    finding = UnitFinding()
    seen: set[tuple[str, str]] = set()
    for constraint in report.constraints.semantic_types():
        if constraint.unit is None:
            continue
        key = (constraint.param, constraint.unit.dimension)
        if key in seen:
            continue
        seen.add(key)
        finding.by_dimension[constraint.unit.dimension][constraint.unit].append(
            constraint.param
        )
        if _name_carries_unit(constraint.param, constraint.unit):
            finding.unit_named.append(constraint.param)
    return finding


def _name_carries_unit(param: str, unit: Unit) -> bool:
    tokens = param.lower().replace("-", ".").replace("_", ".").split(".")
    return any(
        _UNIT_NAME_TOKENS.get(token) is unit for token in tokens
    )


# -- silent overruling (Table 8, Figure 6c) -----------------------------------


@dataclass
class OverrulingFinding:
    params: list[str] = field(default_factory=list)
    constraints: list[EnumRangeConstraint] = field(default_factory=list)


def detect_silent_overruling(report: SpexReport) -> OverrulingFinding:
    finding = OverrulingFinding()
    seen: set[str] = set()
    for constraint in report.constraints.ranges():
        if not isinstance(constraint, EnumRangeConstraint):
            continue
        if constraint.silently_overruled and constraint.param not in seen:
            seen.add(constraint.param)
            finding.params.append(constraint.param)
            finding.constraints.append(constraint)
    # Numeric clamps without notification are overruling too, but the
    # paper counts them under silent violation; only enum-style else
    # and default overrules are reported here, matching Figure 6(c).
    finding.params.sort()
    return finding


# -- unsafe APIs (Table 8, Figure 6d) ------------------------------------------


@dataclass
class UnsafeApiFinding:
    # parameter -> unsafe APIs its value flows through
    params: dict[str, set[str]] = field(default_factory=lambda: defaultdict(set))

    @property
    def affected(self) -> list[str]:
        return sorted(self.params)


def detect_unsafe_apis(
    report: SpexReport, knowledge: ApiKnowledge | None = None
) -> UnsafeApiFinding:
    knowledge = knowledge or default_knowledge()
    finding = UnsafeApiFinding()
    for event in report.analysis.events_of(CallArgEvent):
        spec = knowledge.get(event.callee)
        if spec is None or not spec.unsafe_transform:
            continue
        # Formatting a parameter *out* with a constant format string is
        # not the parsing hazard the paper targets; sprintf only counts
        # when the tainted value is the format itself.
        if event.callee in ("sprintf", "snprintf") and event.arg_index > 0:
            continue
        for name in event.labels.names():
            if not name.startswith("__SPEX_"):
                finding.params[name].add(event.callee)
    # Parse-path conversions seen by the mapping toolkits (the value
    # token's flow is invisible to the main run for table/comparison
    # mappings).
    for param, apis in report.mapping.unsafe_parse.items():
        finding.params[param].update(apis)
    return finding


# -- undocumented constraints (Table 8) ---------------------------------------


@dataclass
class UndocumentedFinding:
    ranges: list[str] = field(default_factory=list)
    control_deps: list[str] = field(default_factory=list)
    value_rels: list[str] = field(default_factory=list)


def detect_undocumented(
    report: SpexReport, manual: dict[str, str]
) -> UndocumentedFinding:
    """Check inferred constraints against the user manual: a range
    must state its bounds (or acceptable values), a dependency must
    mention its gate, a relationship its partner parameter."""
    finding = UndocumentedFinding()
    seen: set[tuple[str, str]] = set()
    for constraint in report.constraints:
        entry = manual.get(constraint.param, "")
        low_entry = entry.lower()
        if isinstance(constraint, NumericRangeConstraint):
            documented = bool(entry) and _range_documented(constraint, entry)
            key = (constraint.param, "range")
            if not documented and key not in seen:
                seen.add(key)
                finding.ranges.append(constraint.param)
        elif isinstance(constraint, EnumRangeConstraint):
            documented = bool(entry) and any(
                str(v).lower() in low_entry for v in constraint.values
            )
            key = (constraint.param, "range")
            if not documented and key not in seen:
                seen.add(key)
                finding.ranges.append(constraint.param)
        elif isinstance(constraint, ControlDepConstraint):
            documented = bool(entry) and (
                constraint.dep_param.lower() in low_entry
            )
            key = (constraint.param, f"dep:{constraint.dep_param}")
            if not documented and key not in seen:
                seen.add(key)
                finding.control_deps.append(constraint.param)
        elif isinstance(constraint, ValueRelConstraint):
            documented = bool(entry) and (
                constraint.other_param.lower() in low_entry
            )
            other_entry = manual.get(constraint.other_param, "").lower()
            documented = documented or constraint.param.lower() in other_entry
            key = (constraint.param, f"rel:{constraint.other_param}")
            if not documented and key not in seen:
                seen.add(key)
                finding.value_rels.append(constraint.param)
    return finding


def _range_documented(constraint: NumericRangeConstraint, entry: str) -> bool:
    if ".." in entry or "between" in entry.lower():
        return True
    mentions = 0
    if constraint.valid_lo is not None and str(int(constraint.valid_lo)) in entry:
        mentions += 1
    if constraint.valid_hi is not None and str(int(constraint.valid_hi)) in entry:
        mentions += 1
    wanted = (constraint.valid_lo is not None) + (constraint.valid_hi is not None)
    return mentions >= wanted and wanted > 0
