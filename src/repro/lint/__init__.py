"""Error-prone configuration design detection (§3.2).

Five detectors over SPEX's inferred constraints:

* case-sensitivity inconsistency (Table 6, Figure 6a)
* unit-granularity inconsistency (Table 7, Figure 6b)
* silent overruling (Table 8, Figure 6c)
* unsafe transformation APIs (Table 8, Figure 6d)
* undocumented constraints (Table 8, right columns)
"""

from repro.lint.engine import DesignLintReport, lint_system

__all__ = ["DesignLintReport", "lint_system"]
