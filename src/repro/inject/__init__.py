"""SPEX-INJ: misconfiguration injection testing (§3.1).

Pipeline: constraints -> generated misconfigurations (Table 2 rules,
one plug-in per constraint kind) -> injected config files (via the
abstract representation, after ConfErr) -> system runs under the
emulated OS -> reaction classification (Table 3) -> error reports.
"""

from repro.inject.ar import ConfigAR, ConfigEntry, DirectiveDialect, KeyValueDialect
from repro.inject.generators import (
    GeneratorRegistry,
    Misconfiguration,
    default_generators,
    generate_misconfigurations,
)
from repro.inject.reactions import Reaction, ReactionCategory
from repro.inject.harness import InjectionHarness, InjectionVerdict
from repro.inject.campaign import Campaign, CampaignReport, Vulnerability

__all__ = [
    "Campaign",
    "CampaignReport",
    "ConfigAR",
    "ConfigEntry",
    "DirectiveDialect",
    "GeneratorRegistry",
    "InjectionHarness",
    "InjectionVerdict",
    "KeyValueDialect",
    "Misconfiguration",
    "Reaction",
    "ReactionCategory",
    "Vulnerability",
    "default_generators",
    "generate_misconfigurations",
]
