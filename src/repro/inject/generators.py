"""Misconfiguration generation rules (Table 2).

"Every generation rule is implemented as a plug-in, which can be
extended for customization."  Each plug-in maps one constraint kind to
erroneous settings:

=============  =====================================================
Basic type     values with invalid basic types (garbage, overflow,
               floats for ints, unit-suffixed numbers)
Semantic type  invalid values specific to each semantic type
Range          values exactly covering out of (and just inside) the
               inferred range
Control dep.   (P ⋄ V) ∧ Q for (P, V, ⋄) -> Q
Value relat.   settings violating the relationship
=============  =====================================================

Usage - generate misconfigurations for one system and group them into
per-parameter batches for the harness::

    from repro.inject.generators import default_generators
    from repro.systems import get_system

    system = get_system("apache")
    constraints = ...  # a SpexReport's ConstraintSet
    registry = default_generators()
    flat = registry.generate(constraints, system.template_ar())
    batches = registry.generate_batches(constraints, system.template_ar())
    # every batch covers exactly one primary parameter:
    assert all(m.primary_param == b.param for b in batches for m in b)

Custom rules subclass :class:`GeneratorPlugin`, implement
``applies_to`` and ``generate``, and are added to the registry with
``registry.add(MyPlugin())`` - "every generation rule is implemented
as a plug-in, which can be extended for customization".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import (
    AccessControlConstraint,
    BasicTypeConstraint,
    Constraint,
    ControlDepConstraint,
    EnumRangeConstraint,
    NumericRangeConstraint,
    SemanticTypeConstraint,
    ValueRelConstraint,
)
from repro.inject.ar import ConfigAR
from repro.knowledge import SemanticType, Unit
from repro.lang import types as ct


@dataclass(frozen=True)
class Misconfiguration:
    """One injected configuration error (possibly multi-parameter)."""

    settings: tuple[tuple[str, str], ...]  # (param, value) pairs
    constraint: Constraint
    rule: str
    description: str

    @property
    def primary_param(self) -> str:
        return self.settings[0][0]

    def params(self) -> list[str]:
        return [name for name, _ in self.settings]


@dataclass(frozen=True)
class MisconfigurationBatch:
    """All misconfigurations targeting one primary parameter.

    The harness evaluates a batch as a unit (one template parse, one
    verdict list), and the pipeline schedules whole batches, so
    per-injection overhead is paid once per parameter instead of once
    per value.
    """

    param: str
    misconfigurations: tuple[Misconfiguration, ...]

    def __len__(self) -> int:
        return len(self.misconfigurations)

    def __iter__(self):
        return iter(self.misconfigurations)


def batch_by_param(
    misconfs: list[Misconfiguration],
) -> list[MisconfigurationBatch]:
    """Group misconfigurations by primary parameter.

    Grouping is stable: batches appear in first-seen parameter order
    and each batch preserves the input order of its members, so a
    batched campaign tests the same injections as the flat loop and
    reports them parameter-by-parameter.
    """
    grouped: dict[str, list[Misconfiguration]] = {}
    for misconf in misconfs:
        grouped.setdefault(misconf.primary_param, []).append(misconf)
    return [
        MisconfigurationBatch(param, tuple(members))
        for param, members in grouped.items()
    ]


class GeneratorPlugin:
    """Base class: one Table 2 rule."""

    rule_name = "base"

    def applies_to(self, constraint: Constraint) -> bool:
        raise NotImplementedError

    def generate(
        self, constraint: Constraint, template: ConfigAR
    ) -> list[Misconfiguration]:
        raise NotImplementedError

    def _make(self, constraint, description, *settings) -> Misconfiguration:
        return Misconfiguration(
            settings=tuple(settings),
            constraint=constraint,
            rule=self.rule_name,
            description=description,
        )


class BasicTypeViolationPlugin(GeneratorPlugin):
    rule_name = "basic-type"

    def applies_to(self, constraint):
        return isinstance(constraint, BasicTypeConstraint)

    def generate(self, constraint, template):
        typ = constraint.type
        param = constraint.param
        out = []
        if isinstance(typ, ct.IntType):
            out.append(
                self._make(
                    constraint,
                    f"non-numeric value for integer parameter {param}",
                    (param, "fast"),
                )
            )
            overflow = (1 << typ.bits) + (1 << (typ.bits - 1)) + 424242
            out.append(
                self._make(
                    constraint,
                    f"overflows the {typ.bits}-bit storage of {param}",
                    (param, str(overflow)),
                )
            )
            out.append(
                self._make(
                    constraint,
                    f"floating-point value for integer parameter {param}",
                    (param, "12.5"),
                )
            )
            out.append(
                self._make(
                    constraint,
                    f"unit-suffixed value for plain integer parameter {param}",
                    (param, "9G"),
                )
            )
        elif isinstance(typ, ct.BoolType):
            out.append(
                self._make(
                    constraint,
                    f"non-boolean value for switch parameter {param}",
                    (param, "maybe"),
                )
            )
        elif isinstance(typ, ct.FloatType):
            out.append(
                self._make(
                    constraint,
                    f"non-numeric value for float parameter {param}",
                    (param, "quick"),
                )
            )
        return out


class ExtremeValuePlugin(GeneratorPlugin):
    """Type-valid but implausibly extreme values for integer
    parameters: zero and a very large count.

    These expose hard-coded limits that never made it into a check -
    the paper's Figure 2 (listener-threads > 16 segfault) and
    Figure 7(a)/(b) (history_size = 0 crash, ThreadLimit = 100000
    abort) are all of this shape.
    """

    rule_name = "extreme-value"

    def applies_to(self, constraint):
        return isinstance(constraint, BasicTypeConstraint) and isinstance(
            constraint.type, ct.IntType
        )

    def generate(self, constraint, template):
        param = constraint.param
        return [
            self._make(
                constraint,
                f"implausibly large value for {param}",
                (param, "100000"),
            ),
            self._make(
                constraint,
                f"zero value for {param}",
                (param, "0"),
            ),
        ]


class SemanticTypeViolationPlugin(GeneratorPlugin):
    rule_name = "semantic-type"

    def applies_to(self, constraint):
        return isinstance(constraint, SemanticTypeConstraint)

    def generate(self, constraint, template):
        param = constraint.param
        semantic = constraint.semantic
        out = []
        if semantic is SemanticType.FILE:
            out.append(
                self._make(
                    constraint,
                    f"directory path where {param} expects a file",
                    (param, "/data/injected_dir"),
                )
            )
            out.append(
                self._make(
                    constraint,
                    f"nonexistent path for file parameter {param}",
                    (param, "/no/such/file"),
                )
            )
        elif semantic in (SemanticType.DIRECTORY, SemanticType.PATH):
            out.append(
                self._make(
                    constraint,
                    f"file path where {param} expects a directory",
                    (param, "/data/injected_file"),
                )
            )
            out.append(
                self._make(
                    constraint,
                    f"nonexistent path for {param}",
                    (param, "/no/such/dir"),
                )
            )
        elif semantic is SemanticType.PORT:
            out.append(
                self._make(
                    constraint,
                    f"already-occupied port for {param}",
                    (param, "3130"),
                )
            )
            out.append(
                self._make(
                    constraint,
                    f"out-of-range port number for {param}",
                    (param, "70000"),
                )
            )
        elif semantic is SemanticType.IP_ADDRESS:
            out.append(
                self._make(
                    constraint,
                    f"malformed IP address for {param}",
                    (param, "999.1.2.3"),
                )
            )
        elif semantic is SemanticType.HOSTNAME:
            out.append(
                self._make(
                    constraint,
                    f"unresolvable hostname for {param}",
                    (param, "no-such-host.invalid"),
                )
            )
        elif semantic is SemanticType.USER:
            out.append(
                self._make(
                    constraint,
                    f"nonexistent user for {param}",
                    (param, "no_such_user_xyz"),
                )
            )
        elif semantic is SemanticType.GROUP:
            out.append(
                self._make(
                    constraint,
                    f"nonexistent group for {param}",
                    (param, "no_such_group_xyz"),
                )
            )
        elif semantic is SemanticType.TIME:
            out.extend(self._time_confusions(constraint, template))
        elif semantic is SemanticType.SIZE:
            out.extend(self._size_confusions(constraint, template))
        return out

    def _time_confusions(self, constraint, template):
        """Values plausible in a *different* time unit: a '60s' intent
        written where the parameter means minutes/ms produces hangs or
        near-zero timeouts."""
        unit = constraint.unit or Unit.SECONDS
        param = constraint.param
        out = []
        if unit in (Unit.SECONDS, Unit.MINUTES, Unit.HOURS):
            out.append(
                self._make(
                    constraint,
                    f"millisecond-scale value for {param} (unit is {unit})",
                    (param, "90000"),
                )
            )
        else:
            out.append(
                self._make(
                    constraint,
                    f"second-scale value for {param} (unit is {unit})",
                    (param, "30"),
                )
            )
        return out

    def _size_confusions(self, constraint, template):
        unit = constraint.unit or Unit.BYTES
        param = constraint.param
        return [
            self._make(
                constraint,
                f"unit-suffixed size for {param} (unit is {unit})",
                (param, "512MB"),
            ),
            self._make(
                constraint,
                f"negative size for {param}",
                (param, "-1"),
            ),
        ]


class RangeViolationPlugin(GeneratorPlugin):
    rule_name = "data-range"

    def applies_to(self, constraint):
        return isinstance(constraint, (NumericRangeConstraint, EnumRangeConstraint))

    def generate(self, constraint, template):
        if isinstance(constraint, NumericRangeConstraint):
            return self._numeric(constraint)
        return self._enum(constraint)

    def _numeric(self, constraint):
        param = constraint.param
        out = []
        if constraint.valid_lo is not None:
            out.append(
                self._make(
                    constraint,
                    f"just below the valid range of {param}",
                    (param, str(int(constraint.valid_lo) - 1)),
                )
            )
        if constraint.valid_hi is not None:
            out.append(
                self._make(
                    constraint,
                    f"just above the valid range of {param}",
                    (param, str(int(constraint.valid_hi) + 1)),
                )
            )
            out.append(
                self._make(
                    constraint,
                    f"far above the valid range of {param}",
                    (param, str(int(constraint.valid_hi) * 40 + 1000)),
                )
            )
        return out

    def _enum(self, constraint):
        param = constraint.param
        out = [
            self._make(
                constraint,
                f"value outside the accepted set of {param}",
                (param, "unsupported_choice"),
            )
        ]
        # Case alternation of a valid value probes case-sensitivity
        # vulnerabilities (the Figure 1 InitiatorName problem).
        for value in constraint.values:
            text = str(value)
            if isinstance(value, str) and text.lower() != text.upper():
                out.append(
                    self._make(
                        constraint,
                        f"case-altered valid value for {param}",
                        (param, text.upper() if text != text.upper() else text.lower()),
                    )
                )
                break
        return out


class ControlDepViolationPlugin(GeneratorPlugin):
    rule_name = "control-dependency"

    def applies_to(self, constraint):
        return isinstance(constraint, ControlDepConstraint)

    def generate(self, constraint, template):
        # Generate (P ⋄ V) ∧ Q: disable P (violate the dependency
        # condition) while explicitly configuring Q.
        p_value = self._violating_value(
            constraint.op, constraint.value, template.get(constraint.dep_param)
        )
        if p_value is None:
            return []
        q_value = self._non_default(constraint.param, template)
        # Q first: the vulnerability is attributed to the ignored
        # parameter, not the gate.
        return [
            self._make(
                constraint,
                f"{constraint.param} set while {constraint.dep_param} "
                f"{_negate_str(constraint.op)} {constraint.value}",
                (constraint.param, q_value),
                (constraint.dep_param, p_value),
            )
        ]

    # Boolean config words grouped by family: the violating value must
    # use the spelling the system actually parses.
    _FALSE_OF = {"on": "off", "yes": "NO", "true": "false", "1": "0"}
    _TRUE_OF = {"off": "on", "no": "YES", "false": "true", "0": "1"}

    def _violating_value(self, op: str, value, current: str | None) -> str | None:
        """A P-value that makes `P op value` FALSE, spelled the way the
        template spells booleans."""
        if not isinstance(value, (int, float)):
            return None
        current_low = (current or "").strip().lower()
        if op == "!=" and value == 0:
            # Need P false/zero.
            if current_low in self._FALSE_OF:
                return self._FALSE_OF[current_low]
            if current_low in self._TRUE_OF:
                return current  # already a false word
            return "0"
        if op == "==" and value == 0:
            # Need P non-zero.
            if current_low in self._TRUE_OF:
                return self._TRUE_OF[current_low]
            if current_low in self._FALSE_OF:
                return current
            return "1"
        if op == "!=":
            return str(value)
        if op == "==":
            return str(int(value) + 1)
        if op == ">":
            return str(int(value))
        if op == ">=":
            return str(int(value) - 1)
        if op == "<":
            return str(int(value))
        if op == "<=":
            return str(int(value) + 1)
        return None

    def _non_default(self, param: str, template: ConfigAR) -> str:
        current = template.get(param)
        if current is None:
            return "7"
        lowered = current.strip().lower()
        flips = {
            "yes": "NO", "no": "YES", "on": "off", "off": "on",
            "true": "false", "false": "true",
        }
        if lowered in flips:
            return flips[lowered]
        try:
            return str(int(current) + 3)
        except ValueError:
            return current + "_altered" if current else "enabled"


class ValueRelViolationPlugin(GeneratorPlugin):
    rule_name = "value-relationship"

    def applies_to(self, constraint):
        return isinstance(constraint, ValueRelConstraint)

    def generate(self, constraint, template):
        p, op, q = constraint.param, constraint.op, constraint.other_param
        base = self._base_value(q, template)
        if op in ("<", "<="):
            p_value, q_value = base + 15, base
        elif op in (">", ">="):
            p_value, q_value = base, base + 15
        else:
            return []
        return [
            self._make(
                constraint,
                f"violates {p} {op} {q}",
                (p, str(p_value)),
                (q, str(q_value)),
            )
        ]

    def _base_value(self, param: str, template: ConfigAR) -> int:
        current = template.get(param)
        if current is not None:
            try:
                return int(current)
            except ValueError:
                pass
        return 10


class AccessControlViolationPlugin(GeneratorPlugin):
    """ACL mistakes: point a path the program must read or write at
    the standard root-only fixture (`/data/restricted_dir` from
    `SubjectSystem.make_os`), and hand `chmod`-installed mode
    parameters values no permission grammar accepts.  When the acting
    identity is configuration too, the identity parameter is set to an
    unprivileged user in the same injection - the paired mistake real
    ACL breakage consists of."""

    rule_name = "access-control"

    RESTRICTED_PATH = "/data/restricted_dir"
    UNPRIVILEGED_USER = "nobody"

    def applies_to(self, constraint):
        return isinstance(constraint, AccessControlConstraint)

    def generate(self, constraint, template):
        param = constraint.param
        if constraint.operation == "mode":
            return [
                self._make(
                    constraint,
                    f"non-octal permission mode for {param}",
                    (param, "899"),
                ),
                self._make(
                    constraint,
                    f"non-numeric permission mode for {param}",
                    (param, "rwxr"),
                ),
            ]
        settings = [(param, self.RESTRICTED_PATH)]
        actor = "the running user"
        if constraint.user_param:
            settings.append(
                (constraint.user_param, self.UNPRIVILEGED_USER)
            )
            actor = f"{constraint.user_param}={self.UNPRIVILEGED_USER}"
        return [
            self._make(
                constraint,
                f"{param} points at a path {actor} cannot "
                f"{constraint.operation}",
                *settings,
            )
        ]


@dataclass
class GeneratorRegistry:
    """The plug-in set; extensible per system (custom data types)."""

    plugins: list[GeneratorPlugin] = field(default_factory=list)

    def add(self, plugin: GeneratorPlugin) -> None:
        self.plugins.append(plugin)

    def generate(
        self, constraints, template: ConfigAR
    ) -> list[Misconfiguration]:
        out: list[Misconfiguration] = []
        seen: set[tuple] = set()
        for constraint in constraints:
            for plugin in self.plugins:
                if not plugin.applies_to(constraint):
                    continue
                for misconf in plugin.generate(constraint, template):
                    key = (misconf.settings, misconf.rule)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(misconf)
        return out

    def generate_batches(
        self, constraints, template: ConfigAR
    ) -> list[MisconfigurationBatch]:
        """Generate and group by primary parameter in one step."""
        return batch_by_param(self.generate(constraints, template))

    def rule_names(self) -> list[str]:
        """The installed rule names, in plug-in order."""
        return [plugin.rule_name for plugin in self.plugins]

    def roster(self) -> list[str]:
        """Qualified plug-in identities (rule name plus implementing
        class).  This is the registry's fingerprint component: two
        plug-ins sharing a rule name but behaving differently (e.g. a
        subclass) must not reuse each other's cached campaigns."""
        return [
            f"{plugin.rule_name}="
            f"{type(plugin).__module__}.{type(plugin).__qualname__}"
            for plugin in self.plugins
        ]


def default_generators() -> GeneratorRegistry:
    registry = GeneratorRegistry()
    registry.add(BasicTypeViolationPlugin())
    registry.add(ExtremeValuePlugin())
    registry.add(SemanticTypeViolationPlugin())
    registry.add(RangeViolationPlugin())
    registry.add(ControlDepViolationPlugin())
    registry.add(ValueRelViolationPlugin())
    registry.add(AccessControlViolationPlugin())
    return registry


def generate_misconfigurations(constraints, template: ConfigAR):
    """Convenience: run the default plug-ins over a constraint set."""
    return default_generators().generate(constraints, template)


def _negate_str(op: str) -> str:
    return {"!=": "==", "==": "!=", "<": ">=", ">": "<=", "<=": ">", ">=": "<"}[op]
