"""Abstract representation (AR) of configuration files.

"We use the configuration file parser in ConfErr to parse a template
configuration file into an abstract representation (AR), and transform
the modified AR with errors injected to a usable configuration file
for testing." (§3.1)

Two dialects cover the evaluated systems: ``key = value`` (MySQL,
PostgreSQL, VSFTP style) and ``Directive value`` (Apache, Squid,
OpenLDAP, Storage-A style).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class ConfigEntry:
    name: str
    value: str
    lineno: int = 0
    comment: str = ""

    def is_comment(self) -> bool:
        return self.name == ""


class ConfigDialect:
    """Parsing/serialization rules for one config file format."""

    comment_chars = ("#",)

    def parse_line(self, line: str) -> tuple[str, str] | None:
        raise NotImplementedError

    def render(self, entry: ConfigEntry) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class KeyValueDialect(ConfigDialect):
    """``name = value`` (separator configurable)."""

    separator: str = "="

    def parse_line(self, line: str) -> tuple[str, str] | None:
        if self.separator not in line:
            return None
        name, _, value = line.partition(self.separator)
        return name.strip(), value.strip()

    def render(self, entry: ConfigEntry) -> str:
        return f"{entry.name}{self.separator}{entry.value}"


@dataclass(frozen=True)
class DirectiveDialect(ConfigDialect):
    """``Directive value...`` - first token is the name."""

    def parse_line(self, line: str) -> tuple[str, str] | None:
        parts = line.split(None, 1)
        if not parts:
            return None
        name = parts[0]
        value = parts[1].strip() if len(parts) > 1 else ""
        return name, value

    def render(self, entry: ConfigEntry) -> str:
        return f"{entry.name} {entry.value}" if entry.value else entry.name


@dataclass
class ConfigAR:
    """Ordered, mutable model of one configuration file."""

    dialect: ConfigDialect
    entries: list[ConfigEntry] = field(default_factory=list)
    raw_lines: list[tuple[int, str]] = field(default_factory=list)  # comments

    @classmethod
    def parse(cls, text: str, dialect: ConfigDialect) -> "ConfigAR":
        ar = cls(dialect=dialect)
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith(dialect.comment_chars):
                ar.raw_lines.append((lineno, raw))
                continue
            parsed = dialect.parse_line(line)
            if parsed is None:
                ar.raw_lines.append((lineno, raw))
                continue
            name, value = parsed
            ar.entries.append(ConfigEntry(name, value, lineno))
        return ar

    def clone(self) -> "ConfigAR":
        return ConfigAR(
            dialect=self.dialect,
            entries=[replace(e) for e in self.entries],
            raw_lines=list(self.raw_lines),
        )

    def get(self, name: str) -> str | None:
        for entry in self.entries:
            if entry.name == name:
                return entry.value
        return None

    def set(self, name: str, value: str) -> None:
        """Replace the entry in place, or append a new one."""
        for entry in self.entries:
            if entry.name == name:
                entry.value = value
                return
        lineno = (self.entries[-1].lineno + 1) if self.entries else 1
        self.entries.append(ConfigEntry(name, value, lineno))

    def remove(self, name: str) -> bool:
        for i, entry in enumerate(self.entries):
            if entry.name == name:
                del self.entries[i]
                return True
        return False

    def line_of(self, name: str) -> int | None:
        for entry in self.entries:
            if entry.name == name:
                return entry.lineno
        return None

    def names(self) -> list[str]:
        return [e.name for e in self.entries]

    def serialize(self) -> str:
        """Render back to config-file text (comments preserved in
        their original relative order before entries added later)."""
        numbered: list[tuple[int, str]] = list(self.raw_lines)
        for entry in self.entries:
            numbered.append((entry.lineno, self.dialect.render(entry)))
        numbered.sort(key=lambda pair: pair[0])
        return "\n".join(text for _, text in numbered) + "\n"
