"""Full injection campaign over one system: SPEX constraints in,
vulnerability report out (the per-system row of Table 5).

`Campaign` is the single-system primitive; multi-system sweeps go
through `repro.pipeline.CampaignPipeline`, which fans campaigns out
across executors and shares the inference cache between them.  A
`Campaign` constructed with an `inference_cache` participates in that
sharing; without one it re-infers on every `run_spex()` call.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core import SpexEngine, SpexOptions, SpexReport
from repro.inject.generators import (
    GeneratorRegistry,
    Misconfiguration,
    batch_by_param,
    default_generators,
)
from repro.inject.harness import InjectionHarness, InjectionVerdict
from repro.inject.reactions import ReactionCategory
from repro.knowledge import default_knowledge
from repro.lang.source import Location
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid the inject <-> systems/pipeline import cycles
    from repro.pipeline.cache import InferenceCache
    from repro.systems.base import SubjectSystem


@dataclass(frozen=True)
class Vulnerability:
    """One confirmed bad reaction, attributable to a code location."""

    system: str
    param: str
    category: ReactionCategory
    rule: str
    detail: str
    injected: tuple[tuple[str, str], ...]
    code_location: Location

    def describe(self) -> str:
        settings = ", ".join(f"{k}={v}" for k, v in self.injected)
        return f"[{self.category}] {self.system}: {settings} -> {self.detail}"


@dataclass
class CampaignReport:
    system: str
    verdicts: list[InjectionVerdict] = field(default_factory=list)
    vulnerabilities: list[Vulnerability] = field(default_factory=list)
    misconfigurations_tested: int = 0
    spex_report: SpexReport | None = None

    def counts_by_category(self) -> dict[ReactionCategory, int]:
        return Counter(v.category for v in self.vulnerabilities)

    def unique_code_locations(self) -> set[tuple[str, int]]:
        return {
            (v.code_location.filename, v.code_location.line)
            for v in self.vulnerabilities
        }

    def total(self) -> int:
        return len(self.vulnerabilities)


@dataclass
class Campaign:
    """spex -> generate -> inject -> classify, for one system."""

    system: "SubjectSystem"
    generators: GeneratorRegistry = field(default_factory=default_generators)
    spex_options: SpexOptions = field(default_factory=SpexOptions)
    # Shared by the pipeline so ablation sweeps and re-runs skip
    # re-inference; None means infer fresh each time.
    inference_cache: "InferenceCache | None" = None

    def run_spex(self) -> SpexReport:
        if self.inference_cache is None:
            return self._infer()
        key = self.inference_cache.key_for(self.system, self.spex_options)
        return self.inference_cache.get_or_compute(key, self._infer)

    def _infer(self) -> SpexReport:
        knowledge = default_knowledge()
        if self.system.custom_knowledge:
            knowledge = knowledge.extend(self.system.custom_knowledge)
        engine = SpexEngine(
            self.system.program(),
            self.system.annotations,
            knowledge=knowledge,
            options=self.spex_options,
        )
        return engine.run()

    def generate(self, spex_report: SpexReport):
        """All misconfigurations of this campaign, batched per
        parameter (Table 2 rules plus guided case alteration)."""
        template = self.system.template_ar()
        misconfs = self.generators.generate(spex_report.constraints, template)
        misconfs += self._case_alterations(spex_report, template)
        return batch_by_param(misconfs), template

    def run(self, spex_report: SpexReport | None = None) -> CampaignReport:
        report = CampaignReport(system=self.system.name)
        report.spex_report = spex_report or self.run_spex()
        batches, template = self.generate(report.spex_report)
        harness = InjectionHarness(self.system)
        report.misconfigurations_tested = sum(len(b) for b in batches)
        # One vulnerability per (parameter, reaction, rule): several
        # erroneous values of the same flavour expose the same hole.
        seen: set[tuple] = set()
        for batch in batches:
            verdicts = harness.test_batch(batch, template)
            for misconf, verdict in zip(batch, verdicts):
                report.verdicts.append(verdict)
                if not verdict.is_vulnerability:
                    continue
                key = (
                    misconf.primary_param,
                    verdict.reaction.category,
                    misconf.rule,
                )
                if key in seen:
                    continue
                seen.add(key)
                report.vulnerabilities.append(
                    self._vulnerability_from(misconf, verdict)
                )
        return report

    def _case_alterations(self, spex_report: SpexReport, template):
        """Case-altered values for parameters whose dataflow shows
        case-SENSITIVE comparisons (the Figure 1 InitiatorName class:
        'TARGET' vs the required lowercase).  Guided alteration in the
        ConfErr spirit, targeted by inferred sensitivity."""
        from repro.core.constraints import BasicTypeConstraint
        from repro.lang.source import Location

        out = []
        basic_by_param = {
            c.param: c for c in spex_report.constraints.basic_types()
        }
        for param, sensitive in sorted(spex_report.case_sensitivity.items()):
            if not sensitive:
                continue
            current = template.get(param)
            if not current or current.upper() == current:
                continue
            constraint = basic_by_param.get(param) or BasicTypeConstraint(
                param, Location("<inferred>", 0, 0)
            )
            out.append(
                Misconfiguration(
                    settings=((param, current.upper()),),
                    constraint=constraint,
                    rule="case-alteration",
                    description=(
                        f"case-altered value for case-sensitively "
                        f"compared parameter {param}"
                    ),
                )
            )
        return out

    def _vulnerability_from(
        self, misconf: Misconfiguration, verdict: InjectionVerdict
    ) -> Vulnerability:
        startup = verdict.startup_result
        location = misconf.constraint.location
        if (
            startup is not None
            and startup.fault_location is not None
            and verdict.reaction.category is ReactionCategory.CRASH_HANG
        ):
            location = startup.fault_location
        return Vulnerability(
            system=self.system.name,
            param=misconf.primary_param,
            category=verdict.reaction.category,
            rule=misconf.rule,
            detail=verdict.reaction.detail,
            injected=misconf.settings,
            code_location=location,
        )
