"""Full injection campaign over one system: SPEX constraints in,
vulnerability report out (the per-system row of Table 5).

`Campaign` is the single-system primitive; multi-system sweeps go
through `repro.pipeline.CampaignPipeline`, which fans campaigns out
across executors and shares the inference cache between them.  A
`Campaign` constructed with an `inference_cache` participates in that
sharing; without one it re-infers on every `run_spex()` call.

A campaign's own injection loop fans out too: `run()` shards the
per-parameter `MisconfigurationBatch`es over the same executor
abstraction the pipeline uses one layer up (serial / thread /
process), then folds verdicts back in deterministic batch order, so
the (parameter, reaction, rule) dedup - and therefore the
`Vulnerability` set - is bit-identical to the serial loop.  A shared
`launch_cache` deduplicates interpreter runs across the shards.

Executor machinery is imported lazily inside `run()`:
`repro.pipeline` sits *above* this module in the layer map, and a
module-level import would be circular.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field

from repro.core import SpexEngine, SpexOptions, SpexReport
from repro.inject.generators import (
    GeneratorRegistry,
    Misconfiguration,
    batch_by_param,
    default_generators,
)
from repro.inject.harness import InjectionHarness, InjectionVerdict
from repro.inject.reactions import ReactionCategory
from repro.knowledge import default_knowledge
from repro.obs import get_registry, metrics_delta, span
from repro.lang.source import Location
from repro.runtime.interpreter import InterpreterOptions
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid the inject <-> systems/pipeline import cycles
    from repro.pipeline.cache import InferenceCache, LaunchCache, SnapshotCache
    from repro.pipeline.executor import Executor
    from repro.systems.base import SubjectSystem


@dataclass(frozen=True)
class Vulnerability:
    """One confirmed bad reaction, attributable to a code location."""

    system: str
    param: str
    category: ReactionCategory
    rule: str
    detail: str
    injected: tuple[tuple[str, str], ...]
    code_location: Location

    def describe(self) -> str:
        settings = ", ".join(f"{k}={v}" for k, v in self.injected)
        return f"[{self.category}] {self.system}: {settings} -> {self.detail}"


@dataclass
class CampaignReport:
    system: str
    verdicts: list[InjectionVerdict] = field(default_factory=list)
    vulnerabilities: list[Vulnerability] = field(default_factory=list)
    misconfigurations_tested: int = 0
    spex_report: SpexReport | None = None

    def counts_by_category(self) -> dict[ReactionCategory, int]:
        return Counter(v.category for v in self.vulnerabilities)

    def unique_code_locations(self) -> set[tuple[str, int]]:
        return {
            (v.code_location.filename, v.code_location.line)
            for v in self.vulnerabilities
        }

    def total(self) -> int:
        return len(self.vulnerabilities)


@dataclass
class Campaign:
    """spex -> generate -> inject -> classify, for one system."""

    system: "SubjectSystem"
    generators: GeneratorRegistry = field(default_factory=default_generators)
    spex_options: SpexOptions = field(default_factory=SpexOptions)
    # Shared by the pipeline so ablation sweeps and re-runs skip
    # re-inference; None means infer fresh each time.
    inference_cache: "InferenceCache | None" = None
    # How the injection loop itself is sharded: an executor name
    # ("serial" / "thread" / "process") or instance, applied to the
    # per-parameter misconfiguration batches.
    executor: "str | Executor" = "serial"
    max_workers: int | None = None
    # Shared by the pipeline so identical launches (same system,
    # rendered config, requests, interpreter options) run once across
    # batches, re-runs and parity sweeps; None disables launch caching.
    launch_cache: "LaunchCache | None" = None
    # Shared warm-boot records (`repro.pipeline.cache.SnapshotCache`):
    # one config's boot prefix is interpreted at most twice across all
    # of this campaign's launches.  None keeps records harness-private
    # (snapshots still on - the harness owns that default).
    snapshot_cache: "SnapshotCache | None" = None
    # Overrides the harness's interpreter options (engine selection,
    # budgets) - the launch-engine benchmarks use this to pit the
    # tree-walking baseline against the compiled engine on identical
    # campaigns.  None keeps the harness default.  Not picklable, so
    # banned on the process-executor path - use `engine` there.
    harness_options: InterpreterOptions | None = None
    # Launch-engine override as a plain string ("tree" | "compiled" |
    # "codegen"); unlike `harness_options` it crosses the pickle
    # boundary, so process-executor workers honour it too.
    engine: str | None = None

    def run_spex(self) -> SpexReport:
        if self.inference_cache is None:
            return self._infer()
        key = self.inference_cache.key_for(self.system, self.spex_options)
        return self.inference_cache.get_or_compute(key, self._infer)

    def _infer(self) -> SpexReport:
        knowledge = default_knowledge()
        if self.system.custom_knowledge:
            knowledge = knowledge.extend(self.system.custom_knowledge)
        engine = SpexEngine(
            self.system.program(),
            self.system.annotations,
            knowledge=knowledge,
            options=self.spex_options,
        )
        return engine.run()

    def generate(self, spex_report: SpexReport):
        """All misconfigurations of this campaign, batched per
        parameter (Table 2 rules plus guided case alteration)."""
        template = self.system.template_ar()
        misconfs = self.generators.generate(spex_report.constraints, template)
        misconfs += self._case_alterations(spex_report, template)
        return batch_by_param(misconfs), template

    def run(
        self,
        spex_report: SpexReport | None = None,
        executor: "str | Executor | None" = None,
    ) -> CampaignReport:
        """Run the campaign; `executor` overrides the configured batch
        sharding strategy for this call only."""
        from repro.pipeline.executor import ProcessExecutor, resolve_executor

        chosen = resolve_executor(
            self.executor if executor is None else executor, self.max_workers
        )
        get_registry().inc("campaign.runs")
        report = CampaignReport(system=self.system.name)
        with span("campaign.run", system=self.system.name):
            report.spex_report = spex_report or self.run_spex()
            batches, template = self.generate(report.spex_report)
            report.misconfigurations_tested = sum(len(b) for b in batches)

            if isinstance(chosen, ProcessExecutor) and len(batches) > 1:
                with span(
                    "campaign.shard",
                    system=self.system.name,
                    batches=len(batches),
                    executor="process",
                ):
                    verdict_lists = self._test_batches_in_processes(
                        chosen, report.spex_report, batches
                    )
            else:
                harness = self._harness()
                with span(
                    "campaign.shard",
                    system=self.system.name,
                    batches=len(batches),
                ):
                    verdict_lists = chosen.map(
                        lambda batch: self._test_one_batch(
                            harness, batch, template
                        ),
                        batches,
                    )

        # One vulnerability per (parameter, reaction, rule): several
        # erroneous values of the same flavour expose the same hole.
        # Verdicts fold back in deterministic batch order, so the dedup
        # (and the Vulnerability set) never depends on scheduling.
        seen: set[tuple] = set()
        for batch, verdicts in zip(batches, verdict_lists):
            for misconf, verdict in zip(batch, verdicts):
                report.verdicts.append(verdict)
                if not verdict.is_vulnerability:
                    continue
                key = (
                    misconf.primary_param,
                    verdict.reaction.category,
                    misconf.rule,
                )
                if key in seen:
                    continue
                seen.add(key)
                report.vulnerabilities.append(
                    self._vulnerability_from(misconf, verdict)
                )
        return report

    def _test_one_batch(
        self, harness: InjectionHarness, batch, template
    ) -> list[InjectionVerdict]:
        """One batch through the harness, wrapped in its span."""
        get_registry().inc("campaign.batches")
        with span(
            "campaign.batch",
            system=self.system.name,
            param=batch.param,
            size=len(batch),
        ):
            return harness.test_batch(batch, template)

    def _harness(self) -> InjectionHarness:
        """The in-process harness, wired to this campaign's caches."""
        kwargs = {
            "launch_cache": self.launch_cache,
            "snapshot_cache": self.snapshot_cache,
            "engine": self.engine,
        }
        if self.harness_options is not None:
            kwargs["options"] = self.harness_options
        return InjectionHarness(self.system, **kwargs)

    def _test_batches_in_processes(
        self, executor, spex_report: SpexReport, batches
    ) -> list[list[InjectionVerdict]]:
        """Shard batches across worker processes.

        Tasks cross a pickle boundary, so they carry (system name,
        spex options, batch index) and workers rebuild the campaign
        context; `_seed_batch_workers` pre-plants this campaign's
        inference result and launch cache in module state so forked
        workers inherit them instead of re-inferring (under a spawn
        start method the seed is simply absent and workers recompute).
        """
        if self.generators.roster() != default_generators().roster():
            raise ValueError(
                "the process executor rebuilds campaign context in "
                "worker processes and cannot ship a customised "
                "generator registry; use the serial or thread executor"
            )
        if self.harness_options is not None:
            raise ValueError(
                "the process executor rebuilds the harness with default "
                "interpreter options in worker processes and cannot ship "
                "a customised InterpreterOptions; use the serial or "
                "thread executor"
            )
        # Boot snapshots the parent already captured travel to fork
        # workers through shared memory: one segment per snapshot, a
        # tiny manifest through the seed store.  Workers map the
        # segments instead of receiving per-task pickles; the parent
        # unlinks everything when the map completes.
        from repro.runtime.snapshot import SnapshotPool

        pool = SnapshotPool()
        if self.snapshot_cache is not None:
            for key, (boundary, blob) in sorted(
                self.snapshot_cache.export_snapshots().items()
            ):
                pool.publish(key, blob, boundary)
        seed_key = _seed_batch_workers(
            self.system.name,
            self.spex_options,
            spex_report,
            self.launch_cache,
            pool.manifest,
        )
        # Each task carries a content hash of its batch as well as its
        # index: a worker that rebuilt a *different* batch list
        # (possible only under a spawn start method, where the seed is
        # absent and re-inference runs under a fresh hash seed) must
        # fail loudly rather than test the wrong injections.
        use_launch_cache = self.launch_cache is not None
        tasks = [
            (
                self.system.name,
                self.spex_options,
                index,
                _batch_digest(batch),
                use_launch_cache,
                self.engine,
            )
            for index, batch in enumerate(batches)
        ]
        try:
            results = executor.map(_test_batch_by_name, tasks)
        finally:
            _WORKER_SEEDS.pop(seed_key, None)
            pool.close()
        verdict_lists: list[list[InjectionVerdict]] = [None] * len(batches)
        for index, verdicts, launch_stats, boot_stats, obs_delta in results:
            verdict_lists[index] = verdicts
            if self.launch_cache is not None:
                self.launch_cache.absorb_stats(launch_stats)
            if self.snapshot_cache is not None:
                self.snapshot_cache.absorb_boot_stats(boot_stats)
            # Worker telemetry folds in exactly like the cache deltas.
            get_registry().absorb(obs_delta)
        return verdict_lists

    def _case_alterations(self, spex_report: SpexReport, template):
        """Case-altered values for parameters whose dataflow shows
        case-SENSITIVE comparisons (the Figure 1 InitiatorName class:
        'TARGET' vs the required lowercase).  Guided alteration in the
        ConfErr spirit, targeted by inferred sensitivity."""
        from repro.core.constraints import BasicTypeConstraint
        from repro.lang.source import Location

        out = []
        basic_by_param = {
            c.param: c for c in spex_report.constraints.basic_types()
        }
        for param, sensitive in sorted(spex_report.case_sensitivity.items()):
            if not sensitive:
                continue
            current = template.get(param)
            if not current or current.upper() == current:
                continue
            constraint = basic_by_param.get(param) or BasicTypeConstraint(
                param, Location("<inferred>", 0, 0)
            )
            out.append(
                Misconfiguration(
                    settings=((param, current.upper()),),
                    constraint=constraint,
                    rule="case-alteration",
                    description=(
                        f"case-altered value for case-sensitively "
                        f"compared parameter {param}"
                    ),
                )
            )
        return out

    def _vulnerability_from(
        self, misconf: Misconfiguration, verdict: InjectionVerdict
    ) -> Vulnerability:
        startup = verdict.startup_result
        location = misconf.constraint.location
        if (
            startup is not None
            and startup.fault_location is not None
            and verdict.reaction.category is ReactionCategory.CRASH_HANG
        ):
            location = startup.fault_location
        return Vulnerability(
            system=self.system.name,
            param=misconf.primary_param,
            category=verdict.reaction.category,
            rule=misconf.rule,
            detail=verdict.reaction.detail,
            injected=misconf.settings,
            code_location=location,
        )


def slim_verdicts(verdicts: list[InjectionVerdict]) -> None:
    """Drop per-verdict interpreter snapshots before verdicts cross a
    pickle boundary: they exist for in-campaign silent-violation
    checks, quadruple the pickle size, and no aggregate consumer reads
    them.  Slimming replaces each result with a copy rather than
    mutating it: the original may be a live launch-cache entry whose
    snapshot later batches still read."""
    from dataclasses import replace

    for verdict in verdicts:
        if verdict.startup_result is not None:
            verdict.startup_result = replace(
                verdict.startup_result, interpreter=None
            )


# -- process-executor batch workers -----------------------------------------
#
# Batch tasks are dispatched by (system name, spex options, batch index)
# and the worker rebuilds everything else.  Two module-level stores make
# that cheap:
#
# * `_WORKER_SEEDS` is written by the *parent* right before the pool
#   forks: fork-started workers inherit the parent's inference result
#   and launch cache for free.  (Pure seed data - a worker that misses
#   it recomputes the same values.)
# * `_WORKER_CONTEXTS` is each worker process's private memo of the
#   rebuilt (harness, batches, template) context, so a worker serving
#   many batches of one campaign pays the rebuild once.

_WORKER_SEEDS: dict[tuple[str, str], tuple] = {}
_WORKER_CONTEXTS: dict[tuple[str, str], tuple] = {}


def _batch_digest(batch) -> str:
    """Content hash of one batch's full injection roster (settings and
    rules, in order) - the parent/worker alignment check's currency."""
    payload = repr(
        (batch.param, [(m.settings, m.rule) for m in batch])
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _seed_batch_workers(
    name: str,
    spex_options: SpexOptions,
    spex_report,
    launch_cache,
    snapshot_manifest: dict | None = None,
) -> tuple[str, str]:
    key = (name, spex_options.fingerprint())
    _WORKER_SEEDS[key] = (spex_report, launch_cache, snapshot_manifest)
    return key


def _worker_context(
    name: str,
    spex_options: SpexOptions,
    use_launch_cache: bool,
    engine: str | None = None,
):
    from repro.pipeline.cache import LaunchCache
    from repro.systems.registry import get_system

    key = (name, spex_options.fingerprint(), use_launch_cache, engine)
    context = _WORKER_CONTEXTS.get(key)
    if context is None:
        seed = _WORKER_SEEDS.get(key[:2])
        spex_report, launch_cache, manifest = (
            seed if seed else (None, None, None)
        )
        campaign = Campaign(get_system(name), spex_options=spex_options)
        if spex_report is None:
            spex_report = campaign.run_spex()
        if use_launch_cache and launch_cache is None:
            launch_cache = LaunchCache()
        if not use_launch_cache:
            # The parent disabled launch caching (memory bound, cold
            # timing measurements); workers must honour that.
            launch_cache = None
        batches, template = campaign.generate(spex_report)
        harness = InjectionHarness(
            campaign.system,
            launch_cache=launch_cache,
            snapshot_cache=_pooled_snapshot_cache(manifest),
            engine=engine,
        )
        context = (harness, batches, template)
        _WORKER_CONTEXTS[key] = context
    return context


def _pooled_snapshot_cache(manifest: dict | None):
    """A worker-private `SnapshotCache` seeded from the parent's
    shared-memory snapshot pool (None manifest or an empty one yields
    a plain cold cache; a vanished segment just boots cold)."""
    from repro.pipeline.cache import SnapshotCache
    from repro.runtime.snapshot import SnapshotPool

    cache = SnapshotCache()
    if manifest:
        for cache_key, entry in manifest.items():
            blob = SnapshotPool.fetch(entry)
            if blob is not None:
                cache.preload_snapshot(cache_key, entry[2], blob)
    return cache


def _test_batch_by_name(task):
    """Process-pool entry point for one `MisconfigurationBatch`.

    Returns (batch index, slimmed verdicts, launch-cache stats delta,
    boot-stats delta, metrics delta); interpreter snapshots are
    dropped before the verdicts cross the pickle boundary -
    silent-violation classification already happened in this process.
    The metrics delta folds the worker's counters/histograms into the
    parent registry exactly like the cache deltas fold into
    `CacheStats`.
    """
    name, spex_options, batch_index, digest, use_launch_cache, engine = task
    harness, batches, template = _worker_context(
        name, spex_options, use_launch_cache, engine
    )
    batch = batches[batch_index]
    if _batch_digest(batch) != digest:
        raise RuntimeError(
            f"worker rebuilt a divergent batch list for {name}: batch "
            f"{batch_index} ({batch.param!r}x{len(batch)}) does not "
            "match the injections the parent dispatched (re-inference "
            "is sensitive to the interpreter hash seed; use a fork "
            "start method or set PYTHONHASHSEED)"
        )
    registry = get_registry()
    boot_before = harness.boot_stats.snapshot()
    obs_before = registry.snapshot()
    registry.inc("campaign.batches")
    if harness.launch_cache is None:
        verdicts = harness.test_batch(batch, template)
        slim_verdicts(verdicts)
        return (
            batch_index,
            verdicts,
            {},
            _stats_delta(boot_before, harness.boot_stats.snapshot()),
            metrics_delta(obs_before, registry.snapshot()),
        )
    before = harness.launch_cache.stats.snapshot()
    verdicts = harness.test_batch(batch, template)
    slim_verdicts(verdicts)
    delta = _stats_delta(before, harness.launch_cache.stats.snapshot())
    return (
        batch_index,
        verdicts,
        delta,
        _stats_delta(boot_before, harness.boot_stats.snapshot()),
        metrics_delta(obs_before, registry.snapshot()),
    )


def _stats_delta(before: dict, after: dict) -> dict:
    return {key: after[key] - before[key] for key in after}
