"""Reaction taxonomy (Table 3).

"When a misconfiguration occurs, the system should pinpoint either the
misconfigured parameter's name/value or its location information.
Otherwise, SPEX-INJ considers the system reaction as a
misconfiguration vulnerability."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ReactionCategory(enum.Enum):
    CRASH_HANG = "crash/hang"
    EARLY_TERMINATION = "early termination"
    FUNCTIONAL_FAILURE = "functional failure"
    SILENT_VIOLATION = "silent violation"
    SILENT_IGNORANCE = "silent ignorance"
    GOOD = "good reaction"

    @property
    def is_vulnerability(self) -> bool:
        return self is not ReactionCategory.GOOD

    def __str__(self) -> str:
        return self.value


_DESCRIPTIONS = {
    ReactionCategory.CRASH_HANG: "The system crashes or hangs.",
    ReactionCategory.EARLY_TERMINATION: (
        "The system exits without pinpointing the injected configuration error."
    ),
    ReactionCategory.FUNCTIONAL_FAILURE: (
        "The system fails functional testing without pinpointing the injected error."
    ),
    ReactionCategory.SILENT_VIOLATION: (
        "The system changes input configurations to different values "
        "without notifying users."
    ),
    ReactionCategory.SILENT_IGNORANCE: (
        "The system ignores input configurations "
        "(mainly for control-dependency violation)."
    ),
    ReactionCategory.GOOD: (
        "The system pinpoints the misconfigured parameter or handles it correctly."
    ),
}


def describe(category: ReactionCategory) -> str:
    return _DESCRIPTIONS[category]


@dataclass(frozen=True)
class Reaction:
    """One observed reaction with its supporting evidence."""

    category: ReactionCategory
    detail: str = ""
    pinpointed: bool = False
    failed_test: str | None = None
    fault_signal: str | None = None

    @property
    def is_vulnerability(self) -> bool:
        return self.category.is_vulnerability
