"""The injection test harness (§3.1 "Testing and Analysis").

For each generated configuration file (containing one
misconfiguration), launch the target system; if it starts, apply the
functional tests one by one; record all logs; classify the reaction
per Table 3.  A reaction is acceptable only if the system *pinpoints*
the injected parameter by name, value, or config-file line.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from typing import TYPE_CHECKING

from repro.core.constraints import ControlDepConstraint
from repro.inject.ar import ConfigAR
from repro.obs import get_registry, get_tracer
from repro.inject.generators import Misconfiguration, MisconfigurationBatch
from repro.inject.reactions import Reaction, ReactionCategory
from repro.runtime.interpreter import InterpreterOptions
from repro.runtime.process import ProcessResult, ProcessStatus, run_program
from repro.runtime.snapshot import (
    BootRecord,
    BootStats,
    BoundaryHint,
    boot_launch,
)

if TYPE_CHECKING:  # avoid the inject <-> systems/pipeline import cycles
    from repro.pipeline.cache import LaunchCache, SnapshotCache
    from repro.systems.base import SubjectSystem


@dataclass
class InjectionVerdict:
    """Outcome of testing one misconfiguration."""

    misconfiguration: Misconfiguration
    reaction: Reaction
    startup_result: ProcessResult | None = None
    tests_run: int = 0
    log_excerpt: str = ""
    # Every functional test that failed.  With stop_at_first_failure
    # this holds at most the first; full-suite mode records them all.
    failed_tests: tuple[str, ...] = ()

    @property
    def is_vulnerability(self) -> bool:
        return self.reaction.is_vulnerability


@dataclass
class InjectionHarness:
    system: "SubjectSystem"
    options: InterpreterOptions = field(
        default_factory=lambda: InterpreterOptions(
            max_steps=400_000, max_virtual_seconds=120.0
        )
    )
    stop_at_first_failure: bool = True
    sort_shortest_first: bool = True
    # Launch-engine override ("tree" | "compiled" | "codegen").  When
    # set, `options` is replaced post-init with a copy carrying this
    # engine, so the knob travels through the options fingerprint and
    # every cache key automatically.  A picklable string (unlike a
    # whole `InterpreterOptions`), so `Campaign`/process executors can
    # forward it to workers.
    engine: str | None = None
    # When set, launches are served content-addressed: identical
    # (system, config text, requests, interpreter options) share one
    # interpreter run.  Launches are pure, so caching is transparent.
    launch_cache: "LaunchCache | None" = None
    # Warm-boot snapshots (`repro.runtime.snapshot`): per-config boot
    # state replayed across the functional-test launches of one
    # config.  Enabled by `options.warm_boot` (default on);
    # `snapshot_cache` shares records across harnesses (campaign +
    # fleet agreement), otherwise records live privately in this
    # harness.
    snapshot_cache: "SnapshotCache | None" = None
    # Memo of `options.fingerprint()`: the options are fixed for the
    # harness's lifetime and the digest sits on the per-launch hot
    # path (do not mutate `options` after the first launch).
    _options_fingerprint: str | None = field(
        default=None, init=False, repr=False
    )
    _boot_records: dict = field(default_factory=dict, init=False, repr=False)
    _boot_stats: BootStats = field(
        default_factory=BootStats, init=False, repr=False
    )
    _boundary_hint: BoundaryHint = field(
        default_factory=BoundaryHint, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.engine is not None and self.engine != self.options.engine:
            self.options = replace(self.options, engine=self.engine)

    # -- low-level runs ------------------------------------------------------

    def launch(
        self, config_text: str, requests: list[str] | None = None
    ) -> ProcessResult:
        # Telemetry: one counter always; a span only when a tracer is
        # wired up (the disabled check keeps the warm path flat - the
        # overhead budget is enforced by benchmarks/test_obs_overhead).
        get_registry().inc("launch.requests")
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span(
                "harness.launch",
                system=self.system.name,
                requests=len(requests or ()),
            ):
                return self._cached_launch(config_text, requests)
        return self._cached_launch(config_text, requests)

    def _cached_launch(
        self, config_text: str, requests: list[str] | None = None
    ) -> ProcessResult:
        if self.launch_cache is None:
            return self._launch(config_text, requests)
        if self._options_fingerprint is None:
            self._options_fingerprint = self.options.fingerprint()
        key = self.launch_cache.key_for(
            self.system,
            config_text,
            requests,
            self.options,
            options_fingerprint=self._options_fingerprint,
        )
        return self.launch_cache.get_or_compute(
            key, lambda: self._cacheable_launch(config_text, requests)
        )

    def _launch(
        self, config_text: str, requests: list[str] | None = None
    ) -> ProcessResult:
        argv = [self.system.name, self.system.config_path]
        if not self.options.warm_boot:
            os_model = self._make_os(config_text)
            if requests:
                os_model.queue_requests(requests)
            return run_program(
                self.system.program(), os_model, argv=argv, options=self.options
            )
        record, stats, hint = self._boot_record(config_text, argv)
        return boot_launch(
            self.system.program(),
            lambda: self._make_os(config_text),
            argv,
            self.options,
            record,
            requests=requests,
            stats=stats,
            hint=hint,
        )

    def _make_os(self, config_text: str):
        os_model = self.system.make_os()
        self.system.install_config(os_model, config_text)
        return os_model

    def _boot_record(
        self, config_text: str, argv: list[str]
    ) -> tuple[BootRecord, BootStats, BoundaryHint]:
        """This config's boot record (plus stats and the system-level
        boundary hint): shared through the snapshot cache when one is
        attached, harness-private otherwise (where `argv` is constant
        by construction, so config text alone keys the record)."""
        if self.snapshot_cache is not None:
            if self._options_fingerprint is None:
                self._options_fingerprint = self.options.fingerprint()
            key = self.snapshot_cache.key_for(
                self.system,
                config_text,
                self.options,
                options_fingerprint=self._options_fingerprint,
                argv=tuple(argv),
            )
            return (
                self.snapshot_cache.record_for(key),
                self.snapshot_cache.boot_stats,
                self.snapshot_cache.hint_for(
                    self.system.name, self._options_fingerprint
                ),
            )
        record = self._boot_records.get(config_text)
        if record is None:
            record = self._boot_records[config_text] = BootRecord()
        return record, self._boot_stats, self._boundary_hint

    @property
    def boot_stats(self) -> BootStats:
        """Snapshot-engine counters for this harness's launches (the
        shared cache's counters when one is attached)."""
        if self.snapshot_cache is not None:
            return self.snapshot_cache.boot_stats
        return self._boot_stats

    def _cacheable_launch(
        self, config_text: str, requests: list[str] | None
    ) -> ProcessResult:
        result = self._launch(config_text, requests)
        if requests:
            # Only startup snapshots are read back (silent-violation
            # checks); dropping request-run interpreters bounds the
            # cache's footprint to one snapshot per unique config.
            result.interpreter = None
        return result

    def baseline_ok(self) -> bool:
        """The unmodified template must start and pass all tests."""
        result = self.launch(self.system.default_config)
        if not result.exited_ok:
            return False
        for test in self.system.tests:
            run = self.launch(self.system.default_config, test.requests)
            if not run.exited_ok or not test.oracle(run.responses):
                return False
        return True

    # -- one misconfiguration ------------------------------------------------

    def test_misconfiguration(self, misconf: Misconfiguration) -> InjectionVerdict:
        return self._test_one(misconf, self.system.template_ar())

    # -- one batch (all injections of one parameter) -------------------------

    def test_batch(
        self,
        batch: MisconfigurationBatch | list[Misconfiguration],
        template: ConfigAR | None = None,
    ) -> list[InjectionVerdict]:
        """Evaluate a group of injections against one parsed template.

        The template AR is parsed once (or supplied by the caller, who
        may share it across every batch of a campaign) and cloned per
        injection, instead of re-parsing the config file for each
        misconfiguration as the one-at-a-time loop did.  Verdicts come
        back in batch order.
        """
        if template is None:
            template = self.system.template_ar()
        return [self._test_one(misconf, template) for misconf in batch]

    def _test_one(
        self, misconf: Misconfiguration, template: ConfigAR
    ) -> InjectionVerdict:
        ar = template.clone()
        for name, value in misconf.settings:
            ar.set(name, value)
        config_text = ar.serialize()

        startup = self.launch(config_text)
        pinpointed = self._pinpointed(startup, misconf, ar)

        if startup.status in (ProcessStatus.CRASHED, ProcessStatus.HUNG):
            detail = startup.fault_reason or startup.status.value
            return InjectionVerdict(
                misconf,
                Reaction(
                    ReactionCategory.CRASH_HANG,
                    detail=detail,
                    pinpointed=pinpointed,
                    fault_signal=startup.fault_signal,
                ),
                startup,
                log_excerpt=startup.log_text(),
            )
        if startup.exit_code != 0:
            category = (
                ReactionCategory.GOOD if pinpointed else ReactionCategory.EARLY_TERMINATION
            )
            return InjectionVerdict(
                misconf,
                Reaction(
                    category,
                    detail=f"exit code {startup.exit_code}",
                    pinpointed=pinpointed,
                ),
                startup,
                log_excerpt=startup.log_text(),
            )

        # Started cleanly: drive the functional suite.
        tests = list(self.system.tests)
        if self.sort_shortest_first:
            tests.sort(key=lambda t: t.duration)
        tests_run = 0
        first_failure: InjectionVerdict | None = None
        failed_tests: list[str] = []
        for test in tests:
            tests_run += 1
            run = self.launch(config_text, test.requests)
            crashed = run.status in (ProcessStatus.CRASHED, ProcessStatus.HUNG)
            failed = crashed or run.exit_code != 0 or not test.oracle(
                run.responses
            )
            if not failed:
                continue
            failed_tests.append(test.name)
            if first_failure is None:
                # Pinpointing evidence only matters for the verdict
                # that classifies the misconfiguration - the first
                # observed failure; later failures are recorded by
                # name without re-scanning logs.
                run_pinpointed = pinpointed or self._pinpointed(
                    run, misconf, ar
                )
                if crashed:
                    reaction = Reaction(
                        ReactionCategory.CRASH_HANG,
                        detail=run.fault_reason or run.status.value,
                        pinpointed=run_pinpointed,
                        failed_test=test.name,
                        fault_signal=run.fault_signal,
                    )
                else:
                    reaction = Reaction(
                        ReactionCategory.GOOD
                        if run_pinpointed
                        else ReactionCategory.FUNCTIONAL_FAILURE,
                        detail=f"functional test {test.name!r} failed",
                        pinpointed=run_pinpointed,
                        failed_test=test.name,
                    )
                first_failure = InjectionVerdict(
                    misconf, reaction, startup, tests_run, run.log_text()
                )
            if self.stop_at_first_failure:
                break
            # Full-suite mode keeps going: every test drives a fresh
            # launch, so one failure (even a crash) does not prevent
            # observing the rest.

        if first_failure is not None:
            # Classification follows the first observed failure (the
            # same verdict both modes return); full-suite mode also
            # carries the complete failure roster and test count.
            first_failure.tests_run = tests_run
            first_failure.failed_tests = tuple(failed_tests)
            return first_failure

        # All tests pass: silent violation / ignorance / good.
        return self._classify_silent(misconf, startup, pinpointed, tests_run)

    # -- silent misbehaviour ---------------------------------------------------

    def _classify_silent(
        self,
        misconf: Misconfiguration,
        startup: ProcessResult,
        pinpointed: bool,
        tests_run: int,
    ) -> InjectionVerdict:
        if pinpointed:
            return InjectionVerdict(
                misconf,
                Reaction(ReactionCategory.GOOD, detail="pinpointed", pinpointed=True),
                startup,
                tests_run,
            )
        if isinstance(misconf.constraint, ControlDepConstraint):
            return InjectionVerdict(
                misconf,
                Reaction(
                    ReactionCategory.SILENT_IGNORANCE,
                    detail=(
                        f"{misconf.constraint.param} has no effect while "
                        f"{misconf.constraint.dep_param} disables it; no notice given"
                    ),
                ),
                startup,
                tests_run,
            )
        changed = self._silently_changed(misconf, startup)
        if changed is not None:
            param, injected, effective = changed
            return InjectionVerdict(
                misconf,
                Reaction(
                    ReactionCategory.SILENT_VIOLATION,
                    detail=(
                        f"{param}: injected {injected!r} but effective value is "
                        f"{effective!r}, with no notification"
                    ),
                ),
                startup,
                tests_run,
            )
        return InjectionVerdict(
            misconf,
            Reaction(ReactionCategory.GOOD, detail="setting accepted"),
            startup,
            tests_run,
        )

    def _silently_changed(self, misconf, startup: ProcessResult):
        interp = startup.interpreter
        if interp is None:
            return None
        for param, injected in misconf.settings:
            location = self.system.effective_locations.get(param)
            if location is None:
                continue
            var, path = location
            value, resolved = self._resolve_effective(interp, var, path)
            if not resolved:
                # An effective-value location that cannot be traversed
                # (missing global, non-struct hop, absent field) is no
                # evidence of a changed value - reporting it as a
                # silent violation would blame the harness's own
                # bookkeeping on the system.
                continue
            intended = self.system.decoder_for(param)(injected)
            if value is None and intended is None:
                continue
            if not _values_match(intended, value):
                return (param, injected, value)
        return None

    @staticmethod
    def _resolve_effective(
        interp, var: str, path: tuple[str, ...]
    ) -> tuple[object, bool]:
        """Walk `var.path...`; returns (value, fully-resolved?)."""
        if var not in interp.globals:
            return None, False
        value = interp.globals[var]
        for fld in path:
            fields = getattr(value, "fields", None)
            if fields is None or fld not in fields:
                return None, False
            value = fields[fld]
        return value, True

    # -- pinpointing -----------------------------------------------------------

    def _pinpointed(self, result: ProcessResult, misconf, ar) -> bool:
        """Did any log message name the parameter, its value, or its
        config-file line?

        Matching is word-bounded: "line 1" must not be credited for a
        log saying "line 12", and a short injected value like "10"
        must not match inside every longer number in the logs.
        """
        for param, value in misconf.settings:
            if result.logs_mention_word(param):
                return True
            if len(value) >= 2 and result.logs_mention_word(value):
                return True
            line = ar.line_of(param)
            if line is not None and result.logs_mention_word(f"line {line}"):
                return True
        return False


def _values_match(intended: object, effective: object) -> bool:
    if isinstance(intended, int) and isinstance(effective, int):
        return intended == effective
    if isinstance(intended, str) and isinstance(effective, str):
        return intended == effective
    if isinstance(intended, int) and isinstance(effective, float):
        return float(intended) == effective
    if isinstance(intended, str) and isinstance(effective, int):
        # The system decoded a string we considered opaque; treat a
        # plain integer string as matching its parse.
        try:
            return int(intended) == effective
        except ValueError:
            return False
    return intended == effective
