"""The injection test harness (§3.1 "Testing and Analysis").

For each generated configuration file (containing one
misconfiguration), launch the target system; if it starts, apply the
functional tests one by one; record all logs; classify the reaction
per Table 3.  A reaction is acceptable only if the system *pinpoints*
the injected parameter by name, value, or config-file line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro.core.constraints import ControlDepConstraint
from repro.inject.ar import ConfigAR
from repro.inject.generators import Misconfiguration, MisconfigurationBatch
from repro.inject.reactions import Reaction, ReactionCategory
from repro.runtime.interpreter import InterpreterOptions
from repro.runtime.process import ProcessResult, ProcessStatus, run_program

if TYPE_CHECKING:  # avoid the inject <-> systems import cycle
    from repro.systems.base import SubjectSystem


@dataclass
class InjectionVerdict:
    """Outcome of testing one misconfiguration."""

    misconfiguration: Misconfiguration
    reaction: Reaction
    startup_result: ProcessResult | None = None
    tests_run: int = 0
    log_excerpt: str = ""

    @property
    def is_vulnerability(self) -> bool:
        return self.reaction.is_vulnerability


@dataclass
class InjectionHarness:
    system: "SubjectSystem"
    options: InterpreterOptions = field(
        default_factory=lambda: InterpreterOptions(
            max_steps=400_000, max_virtual_seconds=120.0
        )
    )
    stop_at_first_failure: bool = True
    sort_shortest_first: bool = True

    # -- low-level runs ------------------------------------------------------

    def launch(
        self, config_text: str, requests: list[str] | None = None
    ) -> ProcessResult:
        os_model = self.system.make_os()
        self.system.install_config(os_model, config_text)
        if requests:
            os_model.queue_requests(requests)
        return run_program(
            self.system.program(),
            os_model,
            argv=[self.system.name, self.system.config_path],
            options=self.options,
        )

    def baseline_ok(self) -> bool:
        """The unmodified template must start and pass all tests."""
        result = self.launch(self.system.default_config)
        if not result.exited_ok:
            return False
        for test in self.system.tests:
            run = self.launch(self.system.default_config, test.requests)
            if not run.exited_ok or not test.oracle(run.responses):
                return False
        return True

    # -- one misconfiguration ------------------------------------------------

    def test_misconfiguration(self, misconf: Misconfiguration) -> InjectionVerdict:
        return self._test_one(misconf, self.system.template_ar())

    # -- one batch (all injections of one parameter) -------------------------

    def test_batch(
        self,
        batch: MisconfigurationBatch | list[Misconfiguration],
        template: ConfigAR | None = None,
    ) -> list[InjectionVerdict]:
        """Evaluate a group of injections against one parsed template.

        The template AR is parsed once (or supplied by the caller, who
        may share it across every batch of a campaign) and cloned per
        injection, instead of re-parsing the config file for each
        misconfiguration as the one-at-a-time loop did.  Verdicts come
        back in batch order.
        """
        if template is None:
            template = self.system.template_ar()
        return [self._test_one(misconf, template) for misconf in batch]

    def _test_one(
        self, misconf: Misconfiguration, template: ConfigAR
    ) -> InjectionVerdict:
        ar = template.clone()
        for name, value in misconf.settings:
            ar.set(name, value)
        config_text = ar.serialize()

        startup = self.launch(config_text)
        pinpointed = self._pinpointed(startup, misconf, ar)

        if startup.status in (ProcessStatus.CRASHED, ProcessStatus.HUNG):
            detail = startup.fault_reason or startup.status.value
            return InjectionVerdict(
                misconf,
                Reaction(
                    ReactionCategory.CRASH_HANG,
                    detail=detail,
                    pinpointed=pinpointed,
                    fault_signal=startup.fault_signal,
                ),
                startup,
                log_excerpt=startup.log_text(),
            )
        if startup.exit_code != 0:
            category = (
                ReactionCategory.GOOD if pinpointed else ReactionCategory.EARLY_TERMINATION
            )
            return InjectionVerdict(
                misconf,
                Reaction(
                    category,
                    detail=f"exit code {startup.exit_code}",
                    pinpointed=pinpointed,
                ),
                startup,
                log_excerpt=startup.log_text(),
            )

        # Started cleanly: drive the functional suite.
        tests = list(self.system.tests)
        if self.sort_shortest_first:
            tests.sort(key=lambda t: t.duration)
        tests_run = 0
        for test in tests:
            tests_run += 1
            run = self.launch(config_text, test.requests)
            run_pinpointed = pinpointed or self._pinpointed(run, misconf, ar)
            if run.status in (ProcessStatus.CRASHED, ProcessStatus.HUNG):
                return InjectionVerdict(
                    misconf,
                    Reaction(
                        ReactionCategory.CRASH_HANG,
                        detail=run.fault_reason or run.status.value,
                        pinpointed=run_pinpointed,
                        failed_test=test.name,
                        fault_signal=run.fault_signal,
                    ),
                    startup,
                    tests_run,
                    run.log_text(),
                )
            if run.exit_code != 0 or not test.oracle(run.responses):
                category = (
                    ReactionCategory.GOOD
                    if run_pinpointed
                    else ReactionCategory.FUNCTIONAL_FAILURE
                )
                verdict = InjectionVerdict(
                    misconf,
                    Reaction(
                        category,
                        detail=f"functional test {test.name!r} failed",
                        pinpointed=run_pinpointed,
                        failed_test=test.name,
                    ),
                    startup,
                    tests_run,
                    run.log_text(),
                )
                if self.stop_at_first_failure:
                    return verdict
                return verdict

        # All tests pass: silent violation / ignorance / good.
        return self._classify_silent(misconf, startup, pinpointed, tests_run)

    # -- silent misbehaviour ---------------------------------------------------

    def _classify_silent(
        self,
        misconf: Misconfiguration,
        startup: ProcessResult,
        pinpointed: bool,
        tests_run: int,
    ) -> InjectionVerdict:
        if pinpointed:
            return InjectionVerdict(
                misconf,
                Reaction(ReactionCategory.GOOD, detail="pinpointed", pinpointed=True),
                startup,
                tests_run,
            )
        if isinstance(misconf.constraint, ControlDepConstraint):
            return InjectionVerdict(
                misconf,
                Reaction(
                    ReactionCategory.SILENT_IGNORANCE,
                    detail=(
                        f"{misconf.constraint.param} has no effect while "
                        f"{misconf.constraint.dep_param} disables it; no notice given"
                    ),
                ),
                startup,
                tests_run,
            )
        changed = self._silently_changed(misconf, startup)
        if changed is not None:
            param, injected, effective = changed
            return InjectionVerdict(
                misconf,
                Reaction(
                    ReactionCategory.SILENT_VIOLATION,
                    detail=(
                        f"{param}: injected {injected!r} but effective value is "
                        f"{effective!r}, with no notification"
                    ),
                ),
                startup,
                tests_run,
            )
        return InjectionVerdict(
            misconf,
            Reaction(ReactionCategory.GOOD, detail="setting accepted"),
            startup,
            tests_run,
        )

    def _silently_changed(self, misconf, startup: ProcessResult):
        interp = startup.interpreter
        if interp is None:
            return None
        for param, injected in misconf.settings:
            location = self.system.effective_locations.get(param)
            if location is None:
                continue
            var, path = location
            value = interp.globals.get(var)
            for fld in path:
                if value is None:
                    break
                value = value.fields.get(fld) if hasattr(value, "fields") else None
            intended = self.system.decoder_for(param)(injected)
            if value is None and intended is None:
                continue
            if not _values_match(intended, value):
                return (param, injected, value)
        return None

    # -- pinpointing -----------------------------------------------------------

    def _pinpointed(self, result: ProcessResult, misconf, ar) -> bool:
        """Did any log message name the parameter, its value, or its
        config-file line?"""
        for param, value in misconf.settings:
            if result.logs_mention(param):
                return True
            if len(value) >= 2 and result.logs_mention(value):
                return True
            line = ar.line_of(param)
            if line is not None and (
                result.logs_mention(f"line {line}")
                or result.logs_mention(f"line {line}:")
            ):
                return True
        return False


def _values_match(intended: object, effective: object) -> bool:
    if isinstance(intended, int) and isinstance(effective, int):
        return intended == effective
    if isinstance(intended, str) and isinstance(effective, str):
        return intended == effective
    if isinstance(intended, int) and isinstance(effective, float):
        return float(intended) == effective
    if isinstance(intended, str) and isinstance(effective, int):
        # The system decoded a string we considered opaque; treat a
        # plain integer string as matching its parse.
        try:
            return int(intended) == effective
        except ValueError:
            return False
    return intended == effective
