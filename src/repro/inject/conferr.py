"""ConfErr-style baseline injector (Keller et al., DSN'08; paper §6).

"Since it is not guided by configuration constraints, it makes generic
alterations to valid configuration settings (e.g., omissions,
substitutions, and case alternations of characters)."

The baseline applies the same human-error operators to every parameter
regardless of its inferred constraints, which is exactly what SPEX-INJ
improves on: the comparison benchmark measures vulnerabilities exposed
per injection for both tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import BasicTypeConstraint
from repro.inject.ar import ConfigAR
from repro.inject.generators import Misconfiguration
from repro.lang.source import Location

_LOC = Location("<conferr>", 0, 0)

# Deterministic keyboard-neighbour substitutions (ConfErr's typo model
# uses keyboard distance; one representative neighbour per key keeps
# the baseline reproducible).
_NEIGHBOUR = {
    "a": "s", "b": "v", "c": "x", "d": "f", "e": "r", "f": "g",
    "g": "h", "h": "j", "i": "o", "j": "k", "k": "l", "l": "k",
    "m": "n", "n": "m", "o": "p", "p": "o", "q": "w", "r": "t",
    "s": "d", "t": "y", "u": "i", "v": "b", "w": "e", "x": "c",
    "y": "u", "z": "x", "0": "9", "1": "2", "2": "3", "3": "4",
    "4": "5", "5": "6", "6": "7", "7": "8", "8": "9", "9": "0",
}


def _constraint_for(param: str) -> BasicTypeConstraint:
    # The baseline has no constraints; a placeholder keeps the
    # Misconfiguration record type uniform.
    return BasicTypeConstraint(param, _LOC)


def omission(param: str, value: str) -> list[tuple[str, str]]:
    """Drop one character (the classic typo)."""
    if len(value) < 2:
        return []
    mid = len(value) // 2
    return [(param, value[:mid] + value[mid + 1 :])]


def substitution(param: str, value: str) -> list[tuple[str, str]]:
    """Replace one character with a keyboard neighbour."""
    for i, ch in enumerate(value):
        repl = _NEIGHBOUR.get(ch.lower())
        if repl is not None:
            mutated = value[:i] + repl + value[i + 1 :]
            if mutated != value:
                return [(param, mutated)]
    return []


def case_alternation(param: str, value: str) -> list[tuple[str, str]]:
    if value.upper() != value:
        return [(param, value.upper())]
    if value.lower() != value:
        return [(param, value.lower())]
    return []


def transposition(param: str, value: str) -> list[tuple[str, str]]:
    """Swap the first two characters."""
    if len(value) < 2 or value[0] == value[1]:
        return []
    return [(param, value[1] + value[0] + value[2:])]


_OPERATORS = [
    ("omission", omission),
    ("substitution", substitution),
    ("case-alternation", case_alternation),
    ("transposition", transposition),
]


@dataclass
class ConfErrBaseline:
    """Generates generic (constraint-blind) misconfigurations."""

    operators: list = field(default_factory=lambda: list(_OPERATORS))

    def generate(self, template: ConfigAR) -> list[Misconfiguration]:
        out: list[Misconfiguration] = []
        seen: set[tuple] = set()
        for entry in template.entries:
            if not entry.value:
                continue
            for op_name, operator in self.operators:
                for settings in operator(entry.name, entry.value):
                    key = (settings,)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(
                        Misconfiguration(
                            settings=(settings,),
                            constraint=_constraint_for(entry.name),
                            rule=f"conferr-{op_name}",
                            description=(
                                f"generic {op_name} of {entry.name}'s value"
                            ),
                        )
                    )
        return out


def run_conferr_baseline(system, harness=None):
    """Test every baseline misconfiguration; returns (tested, verdicts)."""
    from repro.inject.harness import InjectionHarness

    harness = harness or InjectionHarness(system)
    misconfs = ConfErrBaseline().generate(system.template_ar())
    verdicts = [harness.test_misconfiguration(m) for m in misconfs]
    return misconfs, verdicts
