"""The full-evaluation runner.

One `Evaluation` instance runs SPEX, the injection campaign and the
design lint once per subject system (results cached), then renders
each of the paper's tables and figure panels from live data.  The
module-level `shared()` instance lets tests and benchmarks reuse one
set of results.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.accuracy import AccuracyReport, score_accuracy
from repro.core.engine import SpexReport
from repro.inject.campaign import CampaignReport
from repro.inject.reactions import ReactionCategory
from repro.pipeline.runner import CampaignPipeline
from repro.knowledge import Unit
from repro.knowledge.semantic import SIZE_UNITS, TIME_UNITS
from repro.lint import DesignLintReport, lint_system
from repro.reporting.tables import percent, render_table
from repro.study import case_corpus, replay_cases
from repro.systems import all_systems, get_system
from repro.systems.base import SubjectSystem
from repro.systems.corpus import classify, survey_entries

# The paper's presentation order for the seven systems.
SYSTEM_ORDER = [
    "storage_a",
    "apache",
    "mysql",
    "postgresql",
    "openldap",
    "vsftpd",
    "squid",
]

_CATEGORIES = [
    ReactionCategory.CRASH_HANG,
    ReactionCategory.EARLY_TERMINATION,
    ReactionCategory.FUNCTIONAL_FAILURE,
    ReactionCategory.SILENT_VIOLATION,
    ReactionCategory.SILENT_IGNORANCE,
]


@dataclass
class SystemResult:
    system: SubjectSystem
    spex: SpexReport
    campaign: CampaignReport
    lint: DesignLintReport
    accuracy: AccuracyReport


class Evaluation:
    """Runs and caches the whole evaluation."""

    _shared: "Evaluation | None" = None

    def __init__(self) -> None:
        self._results: dict[str, SystemResult] = {}
        # Single-system campaigns are thin wrappers over the pipeline:
        # one system per run() call, caches shared across calls.
        self._pipeline = CampaignPipeline()

    @classmethod
    def shared(cls) -> "Evaluation":
        if cls._shared is None:
            cls._shared = cls()
        return cls._shared

    @property
    def pipeline(self) -> CampaignPipeline:
        return self._pipeline

    def result(self, name: str) -> SystemResult:
        if name not in self._results:
            system = get_system(name)
            report = self._pipeline.run(names=[name]).runs[0].report
            spex = report.spex_report
            lint = lint_system(system, spex)
            accuracy = score_accuracy(name, spex.constraints, system.ground_truth)
            self._results[name] = SystemResult(system, spex, report, lint, accuracy)
        return self._results[name]

    def results(self) -> list[SystemResult]:
        return [self.result(name) for name in SYSTEM_ORDER]

    # -- Table 1 ---------------------------------------------------------

    def table1(self) -> str:
        rows = []
        for entry in survey_entries():
            rows.append([entry.project, entry.description, classify(entry)])
        return render_table(
            "Table 1: Parameter-to-variable mapping in 18 software projects",
            ["Software", "Desc.", "Type"],
            rows,
        )

    # -- Table 2 / Table 3 (rule and taxonomy listings) --------------------

    def table2(self) -> str:
        from repro.inject.generators import default_generators

        rows = []
        for plugin in default_generators().plugins:
            doc = (plugin.__doc__ or plugin.__class__.__doc__ or "").strip()
            first = doc.splitlines()[0] if doc else plugin.rule_name
            rows.append([plugin.rule_name, first])
        return render_table(
            "Table 2: Misconfiguration generation rules (plug-ins)",
            ["Rule", "Generates"],
            rows,
        )

    def table3(self) -> str:
        from repro.inject.reactions import describe

        rows = [[str(cat), describe(cat)] for cat in _CATEGORIES]
        return render_table(
            "Table 3: Categories of bad system reactions",
            ["Reaction", "Description"],
            rows,
        )

    # -- Table 4 -----------------------------------------------------------

    def table4(self) -> str:
        rows = []
        for res in self.results():
            system = res.system
            loc = "-" if system.confidential_counts else str(system.loc())
            params = (
                "-" if system.confidential_counts else str(len(res.spex.parameters))
            )
            kind = "Commercial" if system.proprietary else "Open source"
            rows.append(
                [
                    system.display_name,
                    kind,
                    loc,
                    params,
                    res.spex.lines_of_annotation,
                ]
            )
        return render_table(
            "Table 4: Evaluated software systems",
            ["Software", "Proprietary", "LoC", "#Parameter", "LoA"],
            rows,
        )

    # -- Table 5 -----------------------------------------------------------

    def table5a(self) -> str:
        rows = []
        totals = [0] * (len(_CATEGORIES) + 1)
        for res in self.results():
            counts = res.campaign.counts_by_category()
            row = [res.system.display_name]
            for i, cat in enumerate(_CATEGORIES):
                n = counts.get(cat, 0)
                row.append(n)
                totals[i] += n
            row.append(res.campaign.total())
            totals[-1] += res.campaign.total()
            rows.append(row)
        rows.append(["Total", *totals])
        return render_table(
            "Table 5(a): Misconfiguration vulnerabilities (bad system reactions)",
            [
                "Software",
                "Crash/Hang",
                "Early term.",
                "Functional",
                "Silent viol.",
                "Silent ignor.",
                "Total",
            ],
            rows,
        )

    def table5b(self) -> str:
        rows = []
        total = 0
        for res in self.results():
            n = len(res.campaign.unique_code_locations())
            total += n
            rows.append([res.system.display_name, n])
        rows.append(["Total", total])
        return render_table(
            "Table 5(b): Corresponding source-code locations",
            ["Software", "Source-code locations"],
            rows,
        )

    # -- Table 6 -----------------------------------------------------------

    def table6(self) -> str:
        rows = []
        for res in self.results():
            finding = res.lint.case_sensitivity
            sens, insens = len(finding.sensitive), len(finding.insensitive)
            total = sens + insens
            rows.append(
                [
                    res.system.display_name,
                    f"{sens} ({percent(sens, total)})",
                    f"{insens} ({percent(insens, total)})",
                    "inconsistent" if finding.inconsistent else "consistent",
                ]
            )
        return render_table(
            "Table 6: Case-sensitivity requirements of string parameters",
            ["Software", "Sensitive", "Insensitive", "Verdict"],
            rows,
        )

    # -- Table 7 -----------------------------------------------------------

    def table7(self) -> str:
        headers = ["Software"] + [str(u) for u in SIZE_UNITS] + [
            str(u) for u in TIME_UNITS
        ]
        rows = []
        for res in self.results():
            finding = res.lint.units
            size = finding.distribution("size")
            time_dist = finding.distribution("time")
            row = [res.system.display_name]
            row += [size.get(u, 0) for u in SIZE_UNITS]
            row += [time_dist.get(u, 0) for u in TIME_UNITS]
            rows.append(row)
        return render_table(
            "Table 7: Units of size- and time-related parameters",
            headers,
            rows,
        )

    # -- Table 8 -----------------------------------------------------------

    def table8(self) -> str:
        rows = []
        for res in self.results():
            lint = res.lint
            rows.append(
                [
                    res.system.display_name,
                    len(lint.overruling.params),
                    len(lint.unsafe.affected),
                    len(lint.undocumented.ranges),
                    len(lint.undocumented.control_deps),
                    len(lint.undocumented.value_rels),
                ]
            )
        return render_table(
            "Table 8: Other error-prone configuration design and handling",
            [
                "Software",
                "Silent overruling",
                "Unsafe transform.",
                "Undoc. range",
                "Undoc. ctrl dep.",
                "Undoc. val. rel.",
            ],
            rows,
        )

    # -- Tables 9 and 10 -----------------------------------------------------

    @lru_cache(maxsize=1)
    def _replays(self):
        out = {}
        for name, cases in case_corpus().items():
            out[name] = replay_cases(name, cases, self.result(name).spex)
        return out

    def table9(self) -> str:
        rows = []
        for name in ("storage_a", "apache", "mysql", "openldap"):
            rep = self._replays()[name]
            rows.append(
                [
                    self.result(name).system.display_name,
                    rep.sampled,
                    f"{len(rep.avoidable)} ({percent(len(rep.avoidable), rep.sampled)})",
                ]
            )
        return render_table(
            "Table 9: Real-world cases potentially avoided by SPEX",
            ["Software", "Parameter misconfig.", "Potentially avoided"],
            rows,
        )

    def table10(self) -> str:
        rows = []
        for name in ("storage_a", "apache", "mysql", "openldap"):
            rep = self._replays()[name]
            n = rep.sampled
            rows.append(
                [
                    self.result(name).system.display_name,
                    f"{len(rep.single_sw_incapability)} "
                    f"({percent(len(rep.single_sw_incapability), n)})",
                    f"{len(rep.cross_software)} "
                    f"({percent(len(rep.cross_software), n)})",
                    f"{len(rep.conform_to_constraints)} "
                    f"({percent(len(rep.conform_to_constraints), n)})",
                    f"{len(rep.good_reactions)} "
                    f"({percent(len(rep.good_reactions), n)})",
                ]
            )
        return render_table(
            "Table 10: Breakdown of cases that cannot benefit from SPEX",
            [
                "Software",
                "Single-SW incapab.",
                "Cross-SW",
                "Conform to constraints",
                "Good reactions",
            ],
            rows,
        )

    # -- Table 11 -----------------------------------------------------------

    def table11(self) -> str:
        rows = []
        totals = [0] * 5
        for res in self.results():
            counts = res.spex.constraint_counts()
            row = [
                res.system.display_name,
                counts["basic"],
                counts["semantic"],
                counts["range"],
                counts["ctrl_dep"],
                counts["value_rel"],
            ]
            for i in range(5):
                totals[i] += row[i + 1]
            rows.append(row)
        rows.append(["Total", *totals])
        return render_table(
            "Table 11: Configuration constraints inferred by SPEX",
            ["Software", "Basic", "Semantic", "Range", "Ctrl dep.", "Value rel."],
            rows,
        )

    # -- Table 12 -----------------------------------------------------------

    def table12(self) -> str:
        rows = []
        for res in self.results():
            acc = res.accuracy
            row = [res.system.display_name]
            for kind in ("basic", "semantic", "range", "ctrl_dep", "value_rel"):
                value = acc.accuracy(kind)
                row.append("N/A" if value is None else f"{value * 100.0:.1f}%")
            rows.append(row)
        return render_table(
            "Table 12: Accuracy of constraint inference",
            ["Software", "Basic", "Semantic", "Range", "Ctrl dep.", "Value rel."],
            rows,
        )

    # -- Figures (example panels) ----------------------------------------------

    def figure3(self) -> str:
        """The six inference example panels, from live constraints."""
        panels = []
        storage = self.result("storage_a").spex
        mysql = self.result("mysql").spex
        squid = self.result("squid").spex
        openldap = self.result("openldap").spex
        pg = self.result("postgresql").spex

        def first(pred, items, label):
            for c in items:
                if pred(c):
                    return c.describe()
            return f"<missing: {label}>"

        panels.append(
            "(a) basic type      : "
            + first(
                lambda c: c.param == "log.filesize",
                storage.constraints.basic_types(),
                "log.filesize",
            )
        )
        panels.append(
            "(b) semantic FILE   : "
            + first(
                lambda c: c.param == "ft_stopword_file",
                mysql.constraints.semantic_types(),
                "ft_stopword_file",
            )
        )
        panels.append(
            "(c) semantic PORT   : "
            + first(
                lambda c: c.param == "icp_port" and str(c.semantic) == "PORT",
                squid.constraints.semantic_types(),
                "icp_port",
            )
        )
        panels.append(
            "(d) data range      : "
            + first(
                lambda c: c.param == "index_intlen",
                openldap.constraints.ranges(),
                "index_intlen",
            )
        )
        panels.append(
            "(e) control dep.    : "
            + first(
                lambda c: c.param == "commit_siblings",
                pg.constraints.control_deps(),
                "commit_siblings",
            )
        )
        panels.append(
            "(f) value relation  : "
            + first(
                lambda c: {c.param, c.other_param}
                == {"ft_min_word_len", "ft_max_word_len"},
                mysql.constraints.value_rels(),
                "ft word lengths",
            )
        )
        return "Figure 3: inferred constraint examples\n" + "\n".join(panels)

    def _find_verdict(
        self, system: str, param: str, category: ReactionCategory,
        rule: str | None = None,
    ):
        fallback = None
        for verdict in self.result(system).campaign.verdicts:
            if (
                verdict.misconfiguration.primary_param == param
                and verdict.reaction.category is category
            ):
                if rule is None or verdict.misconfiguration.rule == rule:
                    return verdict
                if fallback is None:
                    fallback = verdict
        return fallback

    def _panel(
        self, label: str, system: str, param: str, category, rule: str | None = None
    ) -> str:
        verdict = self._find_verdict(system, param, category, rule)
        if verdict is None:
            return f"{label}: <no verdict for {system}/{param}>"
        settings = ", ".join(f"{k}={v}" for k, v in verdict.misconfiguration.settings)
        return (
            f"{label}: inject [{settings}] -> {verdict.reaction.category} "
            f"({verdict.reaction.detail})"
        )

    def figure5(self) -> str:
        panels = [
            self._panel(
                "(a) basic-type violation    ",
                "storage_a",
                "log.filesize",
                ReactionCategory.SILENT_VIOLATION,
                rule="basic-type",
            ),
            self._panel(
                "(b) semantic violation FILE ",
                "mysql",
                "ft_stopword_file",
                ReactionCategory.CRASH_HANG,
            ),
            self._panel(
                "(c) semantic violation PORT ",
                "squid",
                "icp_port",
                ReactionCategory.EARLY_TERMINATION,
            ),
            self._panel(
                "(d) data-range violation    ",
                "openldap",
                "index_intlen",
                ReactionCategory.SILENT_VIOLATION,
            ),
            self._panel(
                "(e) control-dep violation   ",
                "postgresql",
                "commit_siblings",
                ReactionCategory.SILENT_IGNORANCE,
            ),
            self._panel(
                "(f) value-rel violation     ",
                "mysql",
                "ft_min_word_len",
                ReactionCategory.FUNCTIONAL_FAILURE,
            ),
        ]
        return "Figure 5: injection examples and exposed reactions\n" + "\n".join(
            panels
        )

    def figure6(self) -> str:
        mysql = self.result("mysql")
        apache = self.result("apache")
        squid = self.result("squid")
        lines = ["Figure 6: error-prone design and handling examples"]
        cs = mysql.lint.case_sensitivity
        lines.append(
            "(a) case-sensitivity inconsistency (MySQL): "
            f"sensitive={cs.sensitive} vs insensitive={cs.insensitive}"
        )
        unit_of = {
            c.param: c.unit
            for c in apache.spex.constraints.semantic_types()
            if c.unit is not None
        }
        lines.append(
            "(b) unit inconsistency (Apache): "
            f"MaxMemFree={unit_of.get('MaxMemFree')} "
            f"vs SendBufferSize={unit_of.get('SendBufferSize')}"
        )
        lines.append(
            "(c) silent overruling (Squid): "
            + ", ".join(squid.lint.overruling.params[:4])
        )
        sscanf_params = sorted(
            p for p, apis in squid.lint.unsafe.params.items() if "sscanf" in apis
        )
        lines.append(
            "(d) unsafe API (Squid sscanf %i): " + ", ".join(sscanf_params[:4])
        )
        return "\n".join(lines)

    def figure7(self) -> str:
        panels = [
            self._panel(
                "(a) system crash            ",
                "mysql",
                "performance_schema_events_waits_history_size",
                ReactionCategory.CRASH_HANG,
                rule="extreme-value",
            ),
            self._panel(
                "(b) early term., misleading ",
                "apache",
                "ThreadLimit",
                ReactionCategory.EARLY_TERMINATION,
                rule="extreme-value",
            ),
            self._panel(
                "(c) functional failure      ",
                "openldap",
                "sockbuf_max_incoming",
                ReactionCategory.FUNCTIONAL_FAILURE,
            ),
            self._panel(
                "(d) silent violation        ",
                "storage_a",
                "wafl.cache.mb",
                ReactionCategory.SILENT_VIOLATION,
            ),
            self._panel(
                "(e) silent ignorance        ",
                "vsftpd",
                "virtual_use_local_privs",
                ReactionCategory.SILENT_IGNORANCE,
            ),
        ]
        return "Figure 7: further vulnerability examples\n" + "\n".join(panels)

    def all_tables(self) -> str:
        sections = [
            self.table1(),
            self.table2(),
            self.table3(),
            self.table4(),
            self.table5a(),
            self.table5b(),
            self.table6(),
            self.table7(),
            self.table8(),
            self.table9(),
            self.table10(),
            self.table11(),
            self.table12(),
            self.figure3(),
            self.figure5(),
            self.figure6(),
            self.figure7(),
        ]
        return "\n\n".join(sections)
