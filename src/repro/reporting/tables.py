"""Plain-text table rendering for the evaluation output."""

from __future__ import annotations


def render_table(
    title: str, headers: list[str], rows: list[list[object]]
) -> str:
    """Monospace table with a title rule, right-padding per column."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def percent(part: int, whole: int) -> str:
    if whole == 0:
        return "n/a"
    return f"{100.0 * part / whole:.1f}%"
