"""Aggregate multi-system report rendering.

Renders one `repro.pipeline.PipelineReport` as a Table 5-style
cross-system summary plus an execution footer (executor, wall time,
cache behaviour) - the operator's view of a batched sweep - and one
`repro.checker.FleetReport` as the corresponding fleet-validation
summary (per-system precision/recall, throughput, interpreter
agreement).  `render_validation_report` is the single-config view the
`check` CLI command prints.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.inject.reactions import ReactionCategory
from repro.pipeline.runner import PipelineReport
from repro.reporting.tables import render_table

if TYPE_CHECKING:  # keep table-only CLI invocations import-light
    from repro.checker.fleet import FleetReport
    from repro.checker.validate import ValidationReport

_CATEGORIES = [
    ReactionCategory.CRASH_HANG,
    ReactionCategory.EARLY_TERMINATION,
    ReactionCategory.FUNCTIONAL_FAILURE,
    ReactionCategory.SILENT_VIOLATION,
    ReactionCategory.SILENT_IGNORANCE,
]


def render_pipeline_report(report: PipelineReport) -> str:
    """The aggregate campaign table plus a cache/executor footer."""
    rows = []
    totals = [0] * (len(_CATEGORIES) + 2)
    for run in report.runs:
        counts = run.report.counts_by_category()
        row: list[object] = [run.name, run.report.misconfigurations_tested]
        totals[0] += run.report.misconfigurations_tested
        for i, category in enumerate(_CATEGORIES):
            n = counts.get(category, 0)
            row.append(n)
            totals[i + 1] += n
        row.append(run.report.total())
        totals[-1] += run.report.total()
        row.append("cache" if run.from_cache else f"{run.duration:.2f}s")
        rows.append(row)
    rows.append(["Total", *totals, ""])
    table = render_table(
        "Pipeline: misconfiguration campaigns across systems",
        [
            "System",
            "Injected",
            "Crash/Hang",
            "Early term.",
            "Functional",
            "Silent viol.",
            "Silent ignor.",
            "Total",
            "Time",
        ],
        rows,
    )
    return table + "\n" + _footer(report)


def render_fleet_report(report: FleetReport) -> str:
    """The fleet-validation table plus a throughput/agreement footer."""
    rows = []
    totals = [0, 0, 0, 0, 0]
    for result in report.results:
        rows.append(
            [
                result.name,
                result.corpus_size,
                result.planted,
                result.flagged,
                result.errors,
                result.warnings,
                _pct(result.scores.precision),
                _pct(result.scores.recall),
                "cache" if result.checker_from_cache else "compiled",
            ]
        )
        totals[0] += result.corpus_size
        totals[1] += result.planted
        totals[2] += result.flagged
        totals[3] += result.errors
        totals[4] += result.warnings
    scores = report.scores()
    rows.append(
        [
            "Total",
            *totals,
            _pct(scores.precision),
            _pct(scores.recall),
            "",
        ]
    )
    table = render_table(
        "Fleet: constraint-checked synthetic user configs",
        [
            "System",
            "Configs",
            "Planted",
            "Flagged",
            "Errors",
            "Warnings",
            "Precision",
            "Recall",
            "Checker",
        ],
        rows,
    )
    checkers = report.cache_stats.get("checkers", {})
    inference = report.cache_stats.get("inference", {})
    lines = [
        table,
        f"executor: {report.executor}; wall time: {report.wall_time:.2f}s; "
        f"{report.throughput():.0f} configs/s "
        f"(seed {report.seed}, mistake rate {report.mistake_rate:.2f})",
        f"checker cache: {checkers.get('hits', 0)} hits / "
        f"{checkers.get('misses', 0)} misses; "
        f"inference cache: {inference.get('hits', 0)} hits / "
        f"{inference.get('misses', 0)} misses",
    ]
    if report.agreement is not None:
        agreement = report.agreement
        lines.append(
            f"interpreter agreement: {agreement.confirmed}/"
            f"{agreement.sampled} flagged configs confirmed misbehaving "
            f"({agreement.refuted} tolerated by the runtime today)"
        )
    return "\n".join(lines)


def render_validation_report(report: ValidationReport) -> str:
    """One config file's diagnostics, human-first."""
    lines = [
        f"{report.system}: {report.parameters_checked} of "
        f"{report.parameters_present} parameters covered by compiled "
        "constraints"
    ]
    if not report.diagnostics:
        lines.append("no problems found")
        return "\n".join(lines)
    for diagnostic in report.diagnostics:
        lines.append(diagnostic.describe())
    errors, warnings = len(report.errors()), len(report.warnings())
    by_kind = ", ".join(
        f"{kind}: {count}"
        for kind, count in sorted(report.by_kind().items())
    )
    lines.append(
        f"{errors} error(s), {warnings} warning(s) ({by_kind})"
    )
    return "\n".join(lines)


def render_submit_report(response, diagnostics: list[dict]) -> str:
    """One service submission's diagnostics, human-first.

    `response` is a `repro.serve.CheckResponse`; `diagnostics` is the
    fully-paginated item list the client drained (already filtered by
    whatever severity/kind filter the submission named).
    """
    lines = [
        f"{response.system}: {response.parameters_checked} of "
        f"{response.parameters_present} parameters covered by compiled "
        f"constraints (revision {response.revision})"
    ]
    if response.history is not None:
        history = response.history
        lines.append(
            f"since revision {history.previous_revision}: "
            f"{len(history.added)} new finding(s), "
            f"{len(history.removed)} resolved, "
            f"{history.unchanged} unchanged"
        )
    if not diagnostics:
        lines.append("no problems found")
        return "\n".join(lines)
    for item in diagnostics:
        where = (
            f" (line {item['config_line']})" if item.get("config_line")
            else ""
        )
        lines.append(
            f"[{item['severity']}] {item['param']}{where}: "
            f"{item['message']}\n"
            f"    fix: {item['suggestion']}\n"
            f"    evidence: {item['evidence']}"
        )
    lines.append(
        f"{response.errors} error(s), {response.warnings} warning(s)"
    )
    return "\n".join(lines)


def _pct(fraction: float | None) -> str:
    return "n/a" if fraction is None else f"{100 * fraction:.1f}%"


def _footer(report: PipelineReport) -> str:
    inference = report.cache_stats.get("inference", {})
    campaigns = report.cache_stats.get("campaigns", {})
    launches = report.cache_stats.get("launches", {})
    snapshots = report.cache_stats.get("snapshots", {})
    lines = [
        f"executor: {report.executor}; wall time: {report.wall_time:.2f}s; "
        f"{report.cached_count()}/{len(report.runs)} campaigns from cache",
        f"inference cache: {inference.get('hits', 0)} hits / "
        f"{inference.get('misses', 0)} misses; "
        f"campaign cache: {campaigns.get('hits', 0)} hits / "
        f"{campaigns.get('misses', 0)} misses; "
        f"launch cache: {launches.get('hits', 0)} hits / "
        f"{launches.get('misses', 0)} misses; "
        f"warm boots: {snapshots.get('resumes', 0)} resumes / "
        f"{snapshots.get('boots', 0)} full boots",
    ]
    return "\n".join(lines)
