"""Aggregate multi-system pipeline report rendering.

Renders one `repro.pipeline.PipelineReport` as a Table 5-style
cross-system summary plus an execution footer (executor, wall time,
cache behaviour) - the operator's view of a batched sweep.
"""

from __future__ import annotations

from repro.inject.reactions import ReactionCategory
from repro.pipeline.runner import PipelineReport
from repro.reporting.tables import render_table

_CATEGORIES = [
    ReactionCategory.CRASH_HANG,
    ReactionCategory.EARLY_TERMINATION,
    ReactionCategory.FUNCTIONAL_FAILURE,
    ReactionCategory.SILENT_VIOLATION,
    ReactionCategory.SILENT_IGNORANCE,
]


def render_pipeline_report(report: PipelineReport) -> str:
    """The aggregate campaign table plus a cache/executor footer."""
    rows = []
    totals = [0] * (len(_CATEGORIES) + 2)
    for run in report.runs:
        counts = run.report.counts_by_category()
        row: list[object] = [run.name, run.report.misconfigurations_tested]
        totals[0] += run.report.misconfigurations_tested
        for i, category in enumerate(_CATEGORIES):
            n = counts.get(category, 0)
            row.append(n)
            totals[i + 1] += n
        row.append(run.report.total())
        totals[-1] += run.report.total()
        row.append("cache" if run.from_cache else f"{run.duration:.2f}s")
        rows.append(row)
    rows.append(["Total", *totals, ""])
    table = render_table(
        "Pipeline: misconfiguration campaigns across systems",
        [
            "System",
            "Injected",
            "Crash/Hang",
            "Early term.",
            "Functional",
            "Silent viol.",
            "Silent ignor.",
            "Total",
            "Time",
        ],
        rows,
    )
    return table + "\n" + _footer(report)


def _footer(report: PipelineReport) -> str:
    inference = report.cache_stats.get("inference", {})
    campaigns = report.cache_stats.get("campaigns", {})
    launches = report.cache_stats.get("launches", {})
    lines = [
        f"executor: {report.executor}; wall time: {report.wall_time:.2f}s; "
        f"{report.cached_count()}/{len(report.runs)} campaigns from cache",
        f"inference cache: {inference.get('hits', 0)} hits / "
        f"{inference.get('misses', 0)} misses; "
        f"campaign cache: {campaigns.get('hits', 0)} hits / "
        f"{campaigns.get('misses', 0)} misses; "
        f"launch cache: {launches.get('hits', 0)} hits / "
        f"{launches.get('misses', 0)} misses",
    ]
    return "\n".join(lines)
