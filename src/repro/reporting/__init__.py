"""Evaluation driver: regenerates every table and figure of §4, plus
the aggregate view of batched multi-system pipeline runs."""

from repro.reporting.aggregate import (
    render_fleet_report,
    render_pipeline_report,
    render_validation_report,
)
from repro.reporting.evalrun import Evaluation, SystemResult
from repro.reporting.tables import render_table

__all__ = [
    "Evaluation",
    "SystemResult",
    "render_fleet_report",
    "render_pipeline_report",
    "render_table",
    "render_validation_report",
]
