"""Evaluation driver: regenerates every table and figure of §4."""

from repro.reporting.evalrun import Evaluation, SystemResult
from repro.reporting.tables import render_table

__all__ = ["Evaluation", "SystemResult", "render_table"]
