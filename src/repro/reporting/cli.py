"""Command-line interface: regenerate tables/figures, run the
pipeline, check config files, validate synthetic fleets.

Usage::

    python -m repro.reporting.cli            # everything (§4)
    python -m repro.reporting.cli table5a    # one table
    python -m repro.reporting.cli figure3 table11
    python -m repro.reporting.cli pipeline --executor process --json
    python -m repro.reporting.cli check mysql /path/to/my.cnf
    python -m repro.reporting.cli fleet --size 1500 --executor process
    python -m repro.reporting.cli serve --port 7878
    python -m repro.reporting.cli submit mysql my.cnf --port 7878

Unknown subcommands exit with status 2 and print this command list;
`check` and `submit` exit 1 when the config has errors, 0 when it is
clean.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.reporting.evalrun import Evaluation

_SECTIONS = [
    "table1", "table2", "table3", "table4", "table5a", "table5b",
    "table6", "table7", "table8", "table9", "table10", "table11",
    "table12", "figure3", "figure5", "figure6", "figure7",
]


def _usage() -> str:
    sections = ", ".join(_SECTIONS)
    return (
        "usage: python -m repro.reporting.cli [command ...]\n"
        "\n"
        "commands:\n"
        "  all (default)      regenerate every table and figure\n"
        f"  <section>          one of: {sections}\n"
        "  pipeline           run the batched multi-system campaign "
        "pipeline\n"
        "                     (--executor serial|thread|process, "
        "--batch-executor serial|thread|process,\n"
        "                     --systems a,b, --workers N, --repeat N, "
        "--json)\n"
        "  check SYSTEM FILE  validate one config file against the "
        "system's\n"
        "                     inferred constraints (exit 1 on errors; "
        "--json)\n"
        "  fleet              validate a synthetic user-config fleet "
        "per system\n"
        "                     (--systems a,b, --size N, --seed N, "
        "--mistake-rate F,\n"
        "                     --executor serial|thread|process, "
        "--workers N,\n"
        "                     --chunk N, --sample N, --json)\n"
        "  serve              run the always-on validation service "
        "(--host, --port,\n"
        "                     --systems a,b, --workers N, "
        "--warmup-only, --json,\n"
        "                     --trace PATH)\n"
        "  submit SYSTEM FILE check one config against a running "
        "service\n"
        "                     (--host, --port, --config-id ID, "
        "--severity error|warning,\n"
        "                     --kinds a,b, --json; exit 1 on errors)\n"
        "  help               show this message\n"
    )


def _pipeline_command(args: list[str]) -> int:
    from repro.pipeline import CampaignPipeline, executor_names
    from repro.reporting.aggregate import render_pipeline_report

    parser = argparse.ArgumentParser(
        prog="python -m repro.reporting.cli pipeline",
        description="Run injection campaigns across systems in one sweep.",
    )
    parser.add_argument(
        "--executor", choices=list(executor_names()), default="serial"
    )
    parser.add_argument(
        "--batch-executor",
        choices=list(executor_names()),
        default=None,
        help=(
            "shard each campaign's injection batches over this executor "
            "(default: serial inside each campaign)"
        ),
    )
    parser.add_argument(
        "--systems",
        default=None,
        help="comma-separated subset (default: all registered systems)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the sweep N times (re-runs hit the caches)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist per-campaign progress checkpoints under DIR so a "
        "killed sweep resumes from its completed systems",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable summary instead of the table",
    )
    try:
        options = parser.parse_args(args)
    except SystemExit as exc:
        return int(exc.code or 0)

    checkpoint = None
    if options.checkpoint:
        from repro.resilience import CheckpointStore

        checkpoint = CheckpointStore(options.checkpoint)
    names = options.systems.split(",") if options.systems else None
    pipeline = CampaignPipeline(
        systems=names,
        executor=options.executor,
        max_workers=options.workers,
        batch_executor=options.batch_executor,
        checkpoint=checkpoint,
    )
    report = None
    try:
        for _ in range(max(1, options.repeat)):
            report = pipeline.run()
    except KeyError as exc:  # unknown system, from the registry
        print(exc.args[0], file=sys.stderr)
        return 2
    if options.json:
        print(json.dumps(report.summary_dict(), indent=2))
    else:
        print(render_pipeline_report(report))
    return 0


def _check_command(args: list[str]) -> int:
    from repro.checker import checker_for_system, validate_config
    from repro.reporting.aggregate import render_validation_report
    from repro.systems.registry import get_system, is_registered, system_names

    parser = argparse.ArgumentParser(
        prog="python -m repro.reporting.cli check",
        description=(
            "Validate one configuration file against a system's "
            "inferred constraints."
        ),
    )
    parser.add_argument("system")
    parser.add_argument("config_file")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of diagnostics",
    )
    try:
        options = parser.parse_args(args)
    except SystemExit as exc:
        return int(exc.code or 0)
    if not is_registered(options.system):
        print(
            f"unknown system {options.system!r}; registered: "
            f"{', '.join(system_names())}",
            file=sys.stderr,
        )
        return 2
    try:
        with open(options.config_file, "r", encoding="utf-8") as handle:
            config_text = handle.read()
    except OSError as exc:
        print(f"cannot read {options.config_file}: {exc}", file=sys.stderr)
        return 2
    checker = checker_for_system(get_system(options.system))
    report = validate_config(checker, config_text)
    if options.json:
        print(json.dumps(report.summary_dict(), indent=2))
    else:
        print(render_validation_report(report))
    return 1 if report.flagged else 0


def _fleet_command(args: list[str]) -> int:
    from repro.checker import run_fleet
    from repro.checker.corpus import DEFAULT_MISTAKE_RATE
    from repro.checker.fleet import DEFAULT_CHUNK_SIZE
    from repro.pipeline import executor_names
    from repro.reporting.aggregate import render_fleet_report

    parser = argparse.ArgumentParser(
        prog="python -m repro.reporting.cli fleet",
        description=(
            "Generate a synthetic user-config fleet per system and "
            "validate it against compiled constraints."
        ),
    )
    parser.add_argument(
        "--systems",
        default=None,
        help="comma-separated subset (default: all registered systems)",
    )
    parser.add_argument("--size", type=int, default=200,
                        help="configs per system")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mistake-rate", type=float, default=DEFAULT_MISTAKE_RATE
    )
    parser.add_argument(
        "--executor", choices=list(executor_names()), default="serial"
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--chunk", type=int, default=DEFAULT_CHUNK_SIZE)
    parser.add_argument(
        "--sample",
        type=int,
        default=0,
        help="ground-truth this many flagged configs under the "
        "injection harness",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="persist per-chunk progress checkpoints under DIR so a "
        "killed run resumes from its completed shards",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable summary instead of the table",
    )
    try:
        options = parser.parse_args(args)
    except SystemExit as exc:
        return int(exc.code or 0)
    checkpoint = None
    if options.checkpoint:
        from repro.resilience import CheckpointStore

        checkpoint = CheckpointStore(options.checkpoint)
    names = options.systems.split(",") if options.systems else None
    try:
        report = run_fleet(
            systems=names,
            size=options.size,
            seed=options.seed,
            mistake_rate=options.mistake_rate,
            executor=options.executor,
            max_workers=options.workers,
            chunk_size=options.chunk,
            agreement_sample=options.sample,
            checkpoint=checkpoint,
        )
    except KeyError as exc:  # unknown system, from the registry
        print(exc.args[0], file=sys.stderr)
        return 2
    if options.json:
        print(json.dumps(report.summary_dict(), indent=2))
    else:
        print(render_fleet_report(report))
    return 0


def _serve_command(args: list[str]) -> int:
    import asyncio

    from repro.serve import ValidationServer, ValidationService

    parser = argparse.ArgumentParser(
        prog="python -m repro.reporting.cli serve",
        description=(
            "Run the always-on validation service: compiled checkers "
            "stay resident and configs are checked over a local NDJSON "
            "socket."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks an ephemeral port")
    parser.add_argument(
        "--systems",
        default=None,
        help="comma-separated subset (default: all registered systems)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--max-pending",
        type=int,
        default=None,
        help="bound the admission queue; excess requests are shed with "
        "a typed `overloaded` error instead of queueing",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline; slower checks return a typed "
        "`deadline` error and count against the circuit breaker",
    )
    parser.add_argument(
        "--warmup-only",
        action="store_true",
        help="warm every checker, print the service status, and exit "
        "(a smoke test of the serve path)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable status lines",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="append NDJSON trace spans (serve.check and below) to PATH",
    )
    try:
        options = parser.parse_args(args)
    except SystemExit as exc:
        return int(exc.code or 0)
    names = options.systems.split(",") if options.systems else None

    async def run() -> int:
        try:
            service = ValidationService(
                systems=names,
                max_workers=options.workers,
                max_pending=options.max_pending,
                deadline_seconds=options.deadline,
            )
        except KeyError as exc:  # unknown system, from the registry
            print(exc.args[0], file=sys.stderr)
            return 2
        await service.start()
        if options.warmup_only:
            status = service.status()
            if options.json:
                print(json.dumps(status.summary_dict(), indent=2))
            else:
                print(
                    f"warmed {len(status.systems)} checker(s) in "
                    f"{status.warmup_seconds:.2f}s: "
                    f"{', '.join(status.systems)}"
                )
            await service.close()
            return 0
        server = ValidationServer(
            service, host=options.host, port=options.port
        )
        await server.start()
        status = service.status()
        if options.json:
            print(
                json.dumps(
                    {
                        "host": options.host,
                        "port": server.port,
                        "systems": list(status.systems),
                        "warmup_seconds": status.warmup_seconds,
                    }
                ),
                flush=True,
            )
        else:
            print(
                f"serving {len(status.systems)} system(s) on "
                f"{options.host}:{server.port} "
                f"(warmup {status.warmup_seconds:.2f}s); Ctrl-C stops",
                flush=True,
            )
        try:
            await server.wait_closed()
        except asyncio.CancelledError:  # pragma: no cover - signal path
            await server.stop()
        return 0

    trace_handle = None
    if options.trace:
        from repro.obs import NdjsonSink, Tracer, set_tracer

        try:
            trace_handle = open(options.trace, "a", encoding="utf-8")
        except OSError as exc:
            print(
                f"cannot open trace file {options.trace}: {exc}",
                file=sys.stderr,
            )
            return 2
        previous_tracer = set_tracer(
            Tracer(sink=NdjsonSink(trace_handle))
        )
    try:
        return asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        return 0
    finally:
        if trace_handle is not None:
            set_tracer(previous_tracer)
            trace_handle.close()


def _submit_command(args: list[str]) -> int:
    from repro.reporting.aggregate import render_submit_report
    from repro.serve import ServeError, submit_config

    parser = argparse.ArgumentParser(
        prog="python -m repro.reporting.cli submit",
        description=(
            "Check one configuration file against a running validation "
            "service (see the serve command)."
        ),
    )
    parser.add_argument("system")
    parser.add_argument("config_file")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--config-id",
        default=None,
        help="config identity for diagnostic history (default: the "
        "file path)",
    )
    parser.add_argument(
        "--severity",
        choices=["error", "warning"],
        default=None,
        help="only return diagnostics of this severity",
    )
    parser.add_argument(
        "--kinds",
        default=None,
        help="comma-separated diagnostic kinds to return",
    )
    parser.add_argument(
        "--connect-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up on connecting after this long (typed `deadline` "
        "error instead of hanging)",
    )
    parser.add_argument(
        "--read-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up on each response after this long",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of diagnostics",
    )
    try:
        options = parser.parse_args(args)
    except SystemExit as exc:
        return int(exc.code or 0)
    try:
        with open(options.config_file, "r", encoding="utf-8") as handle:
            config_text = handle.read()
    except OSError as exc:
        print(f"cannot read {options.config_file}: {exc}", file=sys.stderr)
        return 2
    kinds = tuple(options.kinds.split(",")) if options.kinds else ()
    config_id = options.config_id or options.config_file
    begun = time.perf_counter()
    try:
        response, diagnostics = submit_config(
            options.host,
            options.port,
            options.system,
            config_text,
            config_id=config_id,
            severity=options.severity,
            kinds=kinds,
            connect_timeout=options.connect_timeout,
            read_timeout=options.read_timeout,
        )
    except ServeError as exc:
        print(f"service refused the request: {exc.message}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(
            f"cannot reach the service at {options.host}:{options.port}: "
            f"{exc}",
            file=sys.stderr,
        )
        return 2
    roundtrip = time.perf_counter() - begun
    if options.json:
        payload = response.summary_dict()
        del payload["page"]
        payload["diagnostics"] = diagnostics
        # Client-measured trace: what the *caller* paid, end to end
        # (connect + check + page drain), vs the server-side latency
        # histogram the `metrics` op exposes.
        payload["trace"] = {
            "roundtrip_seconds": roundtrip,
            "config_bytes": len(config_text.encode("utf-8")),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(render_submit_report(response, diagnostics))
    return 1 if response.flagged else 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] in ("help", "-h", "--help"):
        print(_usage())
        return 0
    if args and args[0] == "pipeline":
        return _pipeline_command(args[1:])
    if args and args[0] == "check":
        return _check_command(args[1:])
    if args and args[0] == "fleet":
        return _fleet_command(args[1:])
    if args and args[0] == "serve":
        return _serve_command(args[1:])
    if args and args[0] == "submit":
        return _submit_command(args[1:])
    if not args or args == ["all"]:
        print(Evaluation.shared().all_tables())
        return 0
    unknown = [a for a in args if a not in _SECTIONS]
    if unknown:
        print(f"unknown command(s): {', '.join(unknown)}", file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return 2
    evaluation = Evaluation.shared()
    for name in args:
        print(getattr(evaluation, name)())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
