"""Command-line interface: regenerate tables/figures, run the pipeline.

Usage::

    python -m repro.reporting.cli            # everything (§4)
    python -m repro.reporting.cli table5a    # one table
    python -m repro.reporting.cli figure3 table11
    python -m repro.reporting.cli pipeline --executor process
    python -m repro.reporting.cli pipeline --systems apache,squid --repeat 2

Unknown subcommands exit with status 2 and print this command list.
"""

from __future__ import annotations

import argparse
import sys

from repro.reporting.evalrun import Evaluation

_SECTIONS = [
    "table1", "table2", "table3", "table4", "table5a", "table5b",
    "table6", "table7", "table8", "table9", "table10", "table11",
    "table12", "figure3", "figure5", "figure6", "figure7",
]


def _usage() -> str:
    sections = ", ".join(_SECTIONS)
    return (
        "usage: python -m repro.reporting.cli [command ...]\n"
        "\n"
        "commands:\n"
        "  all (default)      regenerate every table and figure\n"
        f"  <section>          one of: {sections}\n"
        "  pipeline           run the batched multi-system campaign "
        "pipeline\n"
        "                     (--executor serial|thread|process, "
        "--batch-executor serial|thread|process,\n"
        "                     --systems a,b, --workers N, --repeat N)\n"
        "  help               show this message\n"
    )


def _pipeline_command(args: list[str]) -> int:
    from repro.pipeline import CampaignPipeline, executor_names
    from repro.reporting.aggregate import render_pipeline_report

    parser = argparse.ArgumentParser(
        prog="python -m repro.reporting.cli pipeline",
        description="Run injection campaigns across systems in one sweep.",
    )
    parser.add_argument(
        "--executor", choices=list(executor_names()), default="serial"
    )
    parser.add_argument(
        "--batch-executor",
        choices=list(executor_names()),
        default=None,
        help=(
            "shard each campaign's injection batches over this executor "
            "(default: serial inside each campaign)"
        ),
    )
    parser.add_argument(
        "--systems",
        default=None,
        help="comma-separated subset (default: all registered systems)",
    )
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the sweep N times (re-runs hit the caches)",
    )
    try:
        options = parser.parse_args(args)
    except SystemExit as exc:
        return int(exc.code or 0)

    names = options.systems.split(",") if options.systems else None
    pipeline = CampaignPipeline(
        systems=names,
        executor=options.executor,
        max_workers=options.workers,
        batch_executor=options.batch_executor,
    )
    report = None
    try:
        for _ in range(max(1, options.repeat)):
            report = pipeline.run()
    except KeyError as exc:  # unknown system, from the registry
        print(exc.args[0], file=sys.stderr)
        return 2
    print(render_pipeline_report(report))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] in ("help", "-h", "--help"):
        print(_usage())
        return 0
    if args and args[0] == "pipeline":
        return _pipeline_command(args[1:])
    if not args or args == ["all"]:
        print(Evaluation.shared().all_tables())
        return 0
    unknown = [a for a in args if a not in _SECTIONS]
    if unknown:
        print(f"unknown command(s): {', '.join(unknown)}", file=sys.stderr)
        print(_usage(), file=sys.stderr)
        return 2
    evaluation = Evaluation.shared()
    for name in args:
        print(getattr(evaluation, name)())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
