"""Command-line interface: regenerate any table/figure on demand.

Usage::

    python -m repro.reporting.cli            # everything (§4)
    python -m repro.reporting.cli table5a    # one table
    python -m repro.reporting.cli figure3 table11
"""

from __future__ import annotations

import sys

from repro.reporting.evalrun import Evaluation

_SECTIONS = [
    "table1", "table2", "table3", "table4", "table5a", "table5b",
    "table6", "table7", "table8", "table9", "table10", "table11",
    "table12", "figure3", "figure5", "figure6", "figure7",
]


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    evaluation = Evaluation.shared()
    if not args or args == ["all"]:
        print(evaluation.all_tables())
        return 0
    unknown = [a for a in args if a not in _SECTIONS]
    if unknown:
        print(f"unknown section(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(_SECTIONS)}", file=sys.stderr)
        return 2
    for name in args:
        print(getattr(evaluation, name)())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
