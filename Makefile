PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

# Constraint inference iterates hash-seeded containers, so *cross-
# process-tree* constraint counts can drift by ~1 between differently
# seeded interpreters (see CHANGES.md / docs/ARCHITECTURE.md).  Pinning
# the seed makes test and benchmark counts reproducible run to run;
# within one process tree (fork workers) determinism never depended on
# this.
export PYTHONHASHSEED := 0

.PHONY: test test-fast lint bench bench-json bench-check chaos chaos-json fleet-bench obs-bench trace-demo docs-check quickstart pipeline fleet serve all

all: test docs-check

# Tier-1 verification: dead-code/mutable-default lint, then the full
# unit/integration/benchmark suite.
test: lint
	$(PYTHON) -m pytest -x -q

# Inner-loop verification: everything except the benchmark tier
# (benchmarks/ carries the `bench` marker via its conftest).
test-fast: lint
	$(PYTHON) -m pytest -x -q -m "not bench"

# AST-based dead-code + mutable-default checks (no third-party install
# needed); add LINT_EXTERNAL=1 to also run ruff/pyflakes when installed.
LINT_EXTERNAL ?=
lint:
	$(PYTHON) tools/lint.py $(if $(LINT_EXTERNAL),--external)

# Benchmark suite only, with the regenerated tables printed.
bench:
	$(PYTHON) -m pytest benchmarks -q -s

# Launch-engine perf trajectory: regenerates BENCH_launch.json
# (per-system tree/cold/warm launch throughput, cold campaign
# wall-clock under both engines, boot/cache counters).
bench-json:
	$(PYTHON) tools/bench_json.py

# Warm-throughput drift check against the committed BENCH_launch.json.
# Advisory by default (absolute numbers are machine-dependent); set
# BENCH_GUARD=1 to fail on any >20% per-system/engine regression.
bench-check:
	$(PYTHON) tools/bench_json.py --check

# Chaos tier: every recovery path proven end-to-end (kill/resume
# checkpoint parity, retry/quarantine, serve load-shedding and circuit
# breakers), then the recovery-overhead check against the committed
# BENCH_chaos.json (fault catalog in docs/ROBUSTNESS.md).
chaos:
	$(PYTHON) -m pytest tests/chaos -x -q
	$(PYTHON) tools/bench_json.py --chaos --check

# Regenerate BENCH_chaos.json (recovery overhead vs fault-free twin).
chaos-json:
	$(PYTHON) tools/bench_json.py --chaos

# Fleet-scale config-checking benchmark only: configs/sec, executor
# speedup over serial, compiled-checker cache hit rate.
fleet-bench:
	$(PYTHON) -m pytest benchmarks/test_fleet_throughput.py -q -s

# Telemetry overhead benchmark only: enabled-vs-disabled warm launch
# throughput (<=5% budget) plus verdict/footer parity; regenerates
# BENCH_obs.json.
obs-bench:
	$(PYTHON) -m pytest benchmarks/test_obs_overhead.py -q -s

# Run one traced campaign and print its NDJSON spans on stdout (span
# taxonomy in docs/OBSERVABILITY.md).
trace-demo:
	$(PYTHON) examples/trace_demo.py

# Fails if README code blocks drift from working imports.
docs-check:
	$(PYTHON) tools/docs_check.py

quickstart:
	$(PYTHON) examples/quickstart.py

# Always-on validation service on a fixed local port; submit configs
# with `python -m repro.reporting.cli submit <system> <file> --port ...`.
SERVE_PORT ?= 7423
serve:
	$(PYTHON) -m repro.reporting.cli serve --port $(SERVE_PORT)

# The batched multi-system campaign sweep (serial by default;
# EXECUTOR=thread|process to fan out).
EXECUTOR ?= serial
pipeline:
	$(PYTHON) -m repro.reporting.cli pipeline --executor $(EXECUTOR)

# Fleet-scale synthetic-config validation through the CLI.
FLEET_SIZE ?= 200
fleet:
	$(PYTHON) -m repro.reporting.cli fleet --executor $(EXECUTOR) \
		--size $(FLEET_SIZE) --sample 20
