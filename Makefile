PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint bench docs-check quickstart pipeline all

all: test docs-check

# Tier-1 verification: dead-code lint, then the full
# unit/integration/benchmark suite.
test: lint
	$(PYTHON) -m pytest -x -q

# AST-based dead-code checks (no third-party install needed); add
# LINT_EXTERNAL=1 to also run ruff/pyflakes when installed.
LINT_EXTERNAL ?=
lint:
	$(PYTHON) tools/lint.py $(if $(LINT_EXTERNAL),--external)

# Benchmark suite only, with the regenerated tables printed.
bench:
	$(PYTHON) -m pytest benchmarks -q -s

# Fails if README code blocks drift from working imports.
docs-check:
	$(PYTHON) tools/docs_check.py

quickstart:
	$(PYTHON) examples/quickstart.py

# The batched multi-system campaign sweep (serial by default;
# EXECUTOR=thread|process to fan out).
EXECUTOR ?= serial
pipeline:
	$(PYTHON) -m repro.reporting.cli pipeline --executor $(EXECUTOR)
