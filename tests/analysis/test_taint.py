"""Unit tests for the taint/dataflow engine."""

from repro.analysis import (
    BranchCondEvent,
    CallArgEvent,
    CastEvent,
    GetterSpec,
    GlobalSeed,
    ParamSeed,
    StoreEvent,
    StringCompareEvent,
    SwitchCaseEvent,
    TaintEngine,
    UsageEvent,
)
from repro.ir import build_ir
from repro.lang.program import Program


def analyze(source, seeds, getters=None):
    module = build_ir(Program.from_sources({"t.c": source}))
    return TaintEngine(module, seeds, getters).run()


class TestSeedPropagation:
    def test_global_seed_reaches_call(self):
        result = analyze(
            """
            char *stopword_file;
            int init() { int fd = open(stopword_file, 0); return fd; }
            """,
            [GlobalSeed("ft_stopword_file", "stopword_file")],
        )
        events = result.events_of(CallArgEvent)
        open_events = [e for e in events if e.callee == "open"]
        assert open_events
        assert "ft_stopword_file" in open_events[0].labels.names()
        assert open_events[0].arg_index == 0

    def test_param_seed_reaches_call(self):
        result = analyze(
            """
            int set_root(char *arg) { return access(arg, 0); }
            """,
            [ParamSeed("DocumentRoot", "set_root", "arg")],
        )
        events = [e for e in result.events_of(CallArgEvent) if e.callee == "access"]
        assert events
        assert "DocumentRoot" in events[0].labels.names()

    def test_interprocedural_flow_through_helper(self):
        # The MySQL my_open pattern from Figure 3(b): parameter passed
        # through a wrapper before hitting the syscall.
        result = analyze(
            """
            char *stopword_file;
            int my_open(char *FileName, int flags) {
                return open(FileName, flags);
            }
            int init() { return my_open(stopword_file, 0); }
            """,
            [GlobalSeed("ft_stopword_file", "stopword_file")],
        )
        open_events = [
            e for e in result.events_of(CallArgEvent) if e.callee == "open"
        ]
        assert open_events
        assert "ft_stopword_file" in open_events[0].labels.names()
        # Context: the event's chain passes through init's call site.
        assert any(e.chain and e.chain[-1].caller == "init" for e in open_events)

    def test_field_sensitive_struct_global(self):
        result = analyze(
            """
            struct conf { int timeout; int retries; };
            struct conf cfg;
            int worker() { sleep(cfg.timeout); return cfg.retries; }
            """,
            [GlobalSeed("idle_timeout", "cfg", ("timeout",))],
        )
        sleep_events = [
            e for e in result.events_of(CallArgEvent) if e.callee == "sleep"
        ]
        assert sleep_events
        assert "idle_timeout" in sleep_events[0].labels.names()
        # retries is a different field: no cross-contamination.
        for e in result.events_of(CallArgEvent):
            if e.callee != "sleep":
                assert "idle_timeout" not in e.labels.names()

    def test_pointer_param_field_seed(self):
        # OpenLDAP's config_generic(ConfigArgs *c) pattern.
        result = analyze(
            """
            struct config_args { int value_int; };
            int config_generic(struct config_args *c) {
                if (c->value_int < 4) { c->value_int = 4; }
                return c->value_int;
            }
            """,
            [ParamSeed("index_intlen", "config_generic", "c", ("value_int",))],
        )
        branches = result.events_of(BranchCondEvent)
        assert branches
        assert "index_intlen" in branches[0].left.labels.names()
        assert branches[0].right.const == 4

    def test_getter_container_mapping(self):
        result = analyze(
            """
            int get_i32(char *key);
            int setup() {
                int interval = get_i32("Connection.Retry.Interval");
                sleep(interval);
                return 0;
            }
            """,
            [],
            getters=[GetterSpec("get_i32", 0)],
        )
        sleep_events = [
            e for e in result.events_of(CallArgEvent) if e.callee == "sleep"
        ]
        assert sleep_events
        assert "Connection.Retry.Interval" in sleep_events[0].labels.names()

    def test_transform_call_passes_taint_through(self):
        result = analyze(
            """
            int set_port(char *arg) {
                int port = atoi(arg);
                return bind(0, port);
            }
            """,
            [ParamSeed("listen_port", "set_port", "arg")],
        )
        bind_events = [e for e in result.events_of(CallArgEvent) if e.callee == "bind"]
        assert bind_events
        assert any(e.arg_index == 1 for e in bind_events)


class TestEvents:
    def test_cast_event_records_type(self):
        result = analyze(
            """
            char *size_str;
            long parse() { return (int)strtol(size_str, NULL, 10); }
            """,
            [GlobalSeed("log.filesize", "size_str")],
        )
        casts = result.events_of(CastEvent)
        assert casts
        assert str(casts[0].type) == "int"
        assert "log.filesize" in casts[0].labels.names()

    def test_branch_events_carry_comparison(self):
        result = analyze(
            """
            int intlen;
            int check() {
                if (intlen < 4) { return 1; }
                else if (intlen > 255) { return 2; }
                return 0;
            }
            """,
            [GlobalSeed("index_intlen", "intlen")],
        )
        branches = result.events_of(BranchCondEvent)
        ops = {(b.op, b.right.const) for b in branches}
        assert ("<", 4) in ops
        assert (">", 255) in ops

    def test_store_event_on_param_reset(self):
        result = analyze(
            """
            int intlen;
            int clamp() {
                if (intlen > 255) { intlen = 255; }
                return intlen;
            }
            """,
            [GlobalSeed("index_intlen", "intlen")],
        )
        stores = [
            e
            for e in result.events_of(StoreEvent)
            if "index_intlen" in e.target_labels.names() and e.src_is_const
        ]
        assert stores
        assert stores[0].src_const == 255

    def test_string_compare_event(self):
        result = analyze(
            """
            char *mode;
            int check() {
                if (strcasecmp(mode, "on") == 0) { return 1; }
                return 0;
            }
            """,
            [GlobalSeed("cache_mode", "mode")],
        )
        compares = result.events_of(StringCompareEvent)
        assert compares
        assert compares[0].const_other == "on"
        assert compares[0].case_sensitive is False

    def test_switch_event(self):
        result = analyze(
            """
            int level;
            int check() {
                switch (level) {
                    case 1: return 1;
                    case 2: return 2;
                    default: return 0;
                }
            }
            """,
            [GlobalSeed("log_level", "level")],
        )
        switches = result.events_of(SwitchCaseEvent)
        assert switches
        assert {c for c, _ in switches[0].cases} == {1, 2}

    def test_usage_excludes_plain_copy(self):
        # A copy to another variable is NOT usage (thin slicing rule).
        result = analyze(
            """
            int timeout;
            int shadow;
            int copy_only() { shadow = timeout; return 0; }
            """,
            [GlobalSeed("timeout", "timeout")],
        )
        usages = [
            u
            for u in result.events_of(UsageEvent)
            if "timeout" in u.labels.names() and u.function == "copy_only"
        ]
        assert not usages

    def test_usage_includes_arith_branch_libcall(self):
        result = analyze(
            """
            int timeout;
            int use_all() {
                int doubled = timeout * 2;
                if (timeout > 10) { sleep(timeout); }
                return doubled;
            }
            """,
            [GlobalSeed("timeout", "timeout")],
        )
        kinds = {
            u.kind
            for u in result.events_of(UsageEvent)
            if "timeout" in u.labels.names()
        }
        assert kinds == {"arith", "branch", "libcall"}


class TestContextSensitivity:
    def test_no_cross_contamination_between_call_sites(self):
        # Two parameters flow through the same helper; comparisons
        # inside the helper must not fuse their labels.
        result = analyze(
            """
            int min_len;
            int max_len;
            int clamp(int v) {
                if (v > 100) { v = 100; }
                return v;
            }
            int setup() {
                int a = clamp(min_len);
                int b = clamp(max_len);
                return a + b;
            }
            """,
            [GlobalSeed("ft_min_word_len", "min_len"), GlobalSeed("ft_max_word_len", "max_len")],
        )
        # Each invocation sees only its own label.
        for event in result.events_of(BranchCondEvent):
            if event.function == "clamp":
                names = event.left.labels.names()
                assert names in ({"ft_min_word_len"}, {"ft_max_word_len"})

    def test_pointer_aliasing_misattributes(self):
        # Without alias analysis, a re-targeted pointer attributes
        # facts to both parameters (the paper's OpenLDAP inaccuracy).
        result = analyze(
            """
            int param_a;
            int param_b;
            int poke(int which) {
                int *p = &param_a;
                if (which) { p = &param_b; }
                if (*p > 64) { return 1; }
                return 0;
            }
            """,
            [GlobalSeed("a_limit", "param_a"), GlobalSeed("b_limit", "param_b")],
        )
        branches = [
            b
            for b in result.events_of(BranchCondEvent)
            if b.right.const == 64
        ]
        assert branches
        names = branches[0].left.labels.names()
        assert names == {"a_limit", "b_limit"}  # mis-attribution, by design

    def test_writeback_through_pointer_argument(self):
        result = analyze(
            """
            char *raw;
            long out_value;
            void parse_into(char *s, long *dest) { *dest = strtol(s, NULL, 10); }
            int setup() { parse_into(raw, &out_value); return 0; }
            """,
            [GlobalSeed("max_size", "raw")],
        )
        # The labels flowed through the out-pointer back into the
        # caller's global.
        labels = result.global_labels.get(("global", "out_value", ()), {})
        assert "max_size" in labels


class TestHopCounting:
    def test_direct_use_has_zero_hops(self):
        result = analyze(
            """
            int timeout;
            int f() { if (timeout > 5) { return 1; } return 0; }
            """,
            [GlobalSeed("timeout", "timeout")],
        )
        branch = result.events_of(BranchCondEvent)[0]
        assert dict(branch.left.labels.entries)["timeout"] == 0

    def test_copy_through_named_var_increments_hops(self):
        result = analyze(
            """
            int timeout;
            int f() {
                int local_copy = timeout;
                if (local_copy > 5) { return 1; }
                return 0;
            }
            """,
            [GlobalSeed("timeout", "timeout")],
        )
        branch = result.events_of(BranchCondEvent)[0]
        hops = dict(branch.left.labels.entries)["timeout"]
        assert hops == 1
