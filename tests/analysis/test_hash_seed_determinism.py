"""Inference must not depend on the interpreter's hash seed.

Historically, constraint inference iterated hash-ordered containers
(pointer-target sets in the taint engine, transitive control
dependences), so two differently seeded processes could drift by ~1 in
their inferred constraint counts; the Makefile pins `PYTHONHASHSEED=0`
to paper over it.  The drift sites now iterate sorted, which makes the
pin belt-and-braces rather than load-bearing.  This test proves it: it
runs a small system's full inference in subprocesses under two
*different* hash seeds and asserts both the cache key
(`spex_fingerprint`) and a canonical digest of the inferred result are
identical.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

# Runs in a fresh interpreter: infer over one small system and print
# the spex cache key plus a canonical digest of everything inference
# produced (constraints, parameters, case sensitivity, event count).
_PROBE = """
import hashlib, json, sys
from repro.inject.campaign import Campaign
from repro.pipeline.cache import spex_fingerprint
from repro.systems.registry import get_system

system = get_system("vsftpd")
report = Campaign(system).run_spex()
digest = hashlib.sha256()
for line in sorted(repr(c) for c in report.constraints):
    digest.update(line.encode("utf-8"))
    digest.update(b"\\x00")
payload = {
    "fingerprint": spex_fingerprint(system.sources, system.annotations),
    "constraints": digest.hexdigest(),
    "counts": report.constraint_counts(),
    "parameters": sorted(report.parameters),
    "case_sensitivity": dict(sorted(report.case_sensitivity.items())),
    "events": len(report.analysis.events),
}
json.dump(payload, sys.stdout, sort_keys=True)
"""


def _infer_under_seed(seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _PROBE],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
        check=True,
    )
    return json.loads(proc.stdout)


def test_inference_is_identical_across_hash_seeds():
    baseline = _infer_under_seed("0")
    reseeded = _infer_under_seed("424242")
    assert reseeded == baseline
