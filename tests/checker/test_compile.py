"""Unit tests for constraint-to-validator compilation."""

import pytest

from repro.checker import checker_for_system, validate_config
from repro.checker.compile import EnvView, compile_checker
from repro.inject.campaign import Campaign
from repro.pipeline import PipelineCaches
from repro.systems import get_system


@pytest.fixture(scope="module")
def caches():
    return PipelineCaches()


@pytest.fixture(scope="module")
def mysql_checker(caches):
    return checker_for_system(get_system("mysql"), caches=caches)


class TestCompile:
    def test_compiles_every_constraint_kind(self, mysql_checker):
        assert mysql_checker.constraints_compiled > 20
        assert mysql_checker.param_validators  # basic/semantic/range
        assert mysql_checker.pair_validators  # ctrl-dep/value-rel

    def test_default_config_validates_clean(self, mysql_checker):
        report = validate_config(
            mysql_checker, get_system("mysql").default_config
        )
        assert not report.flagged
        assert report.diagnostics == []  # calibration suppressed the rest

    def test_calibration_recorded(self, caches):
        checker = checker_for_system(get_system("squid"), caches=caches)
        # Whatever the template trips is recorded, suppressed, and
        # exactly mirrors the suppression set.
        assert checker.suppressed == frozenset(
            d.suppression_key for d in checker.calibration
        )

    def test_checker_cache_hit_returns_same_object(self, caches):
        system = get_system("mysql")
        first = checker_for_system(system, caches=caches)
        hits_before = caches.checkers.stats.hits
        second = checker_for_system(system, caches=caches)
        assert second is first
        assert caches.checkers.stats.hits == hits_before + 1

    def test_known_params_cover_template(self, mysql_checker):
        system = get_system("mysql")
        for entry in system.template_ar().entries:
            assert entry.name in mysql_checker.known_params


class TestBasicTypeValidators:
    @pytest.mark.parametrize(
        "value,code",
        [
            ("fast", "not-an-integer"),
            ("12.5", "fractional-int"),
            ("9G", "unit-suffix"),
            ("99999999999999999999", "int-overflow"),
            # Non-finite floats must diagnose, not crash int(float(x)).
            ("nan", "not-an-integer"),
            ("1e999", "not-an-integer"),
        ],
    )
    def test_integer_violations(self, mysql_checker, value, code):
        report = validate_config(
            mysql_checker, f"max_connections = {value}\n"
        )
        # The overflow value also trips the range constraint; the
        # basic-type diagnostic must be among the errors either way.
        diagnostics = [d for d in report.errors() if d.code == code]
        assert diagnostics, [d.code for d in report.errors()]
        assert all(d.param == "max_connections" for d in report.errors())
        assert diagnostics[0].kind == "basic"
        assert diagnostics[0].config_line == 1

    def test_boolean_words_pass_integer_slots(self, caches):
        # vsftpd's YES/NO switches map to int variables; words the
        # boolean decoder understands are not type mistakes.
        checker = checker_for_system(get_system("vsftpd"), caches=caches)
        ok = validate_config(checker, "write_enable=NO\n")
        assert not ok.flagged
        bad = validate_config(checker, "write_enable=fast\n")
        assert [d.code for d in bad.errors()] == ["not-an-integer"]


class TestRangeValidators:
    def test_numeric_above_range(self, mysql_checker):
        report = validate_config(mysql_checker, "ft_min_word_len = 99\n")
        codes = {d.code for d in report.errors()}
        assert "above-range" in codes

    def test_numeric_in_range_clean(self, mysql_checker):
        report = validate_config(mysql_checker, "ft_min_word_len = 5\n")
        assert not report.flagged

    def test_case_sensitive_enum_suggests_exact_spelling(
        self, mysql_checker
    ):
        report = validate_config(
            mysql_checker, "innodb_file_format_check = antelope\n"
        )
        (diagnostic,) = report.errors()
        assert diagnostic.code == "wrong-case"
        assert "'Antelope'" in diagnostic.suggestion


class TestSemanticValidators:
    def test_occupied_port(self, mysql_checker):
        report = validate_config(mysql_checker, "port = 3130\n")
        assert "port-in-use" in {d.code for d in report.errors()}

    def test_directory_where_file_expected(self, mysql_checker):
        report = validate_config(
            mysql_checker, "ft_stopword_file = /data/injected_dir\n"
        )
        assert "dir-for-file" in {d.code for d in report.errors()}

    def test_missing_parent_directory(self, mysql_checker):
        report = validate_config(
            mysql_checker, "ft_stopword_file = /no/such/file\n"
        )
        assert "missing-path" in {d.code for d in report.errors()}


class TestCrossParameterValidators:
    def test_value_relationship_against_default(self, mysql_checker):
        # ft_max_word_len defaults to 84; 99 violates min < max even
        # though only one side is set in the user's file.
        report = validate_config(mysql_checker, "ft_min_word_len = 99\n")
        assert "relationship-violated" in {d.code for d in report.errors()}

    def test_value_relationship_satisfied(self, mysql_checker):
        report = validate_config(
            mysql_checker, "ft_min_word_len = 5\nft_max_word_len = 50\n"
        )
        assert not report.flagged

    def test_control_dependency_disabled_gate(self, caches):
        checker = checker_for_system(get_system("vsftpd"), caches=caches)
        report = validate_config(
            checker, "ssl_enable=NO\nssl_tlsv1=NO\n"
        )
        deps = [
            d for d in report.errors() if d.code == "dependency-disabled"
        ]
        assert deps and deps[0].param == "ssl_tlsv1"
        assert "ssl_enable" in deps[0].message

    def test_control_dependency_spares_vendor_defaults(self, caches):
        # ssl_tlsv1=YES is the template's own value: a user who kept
        # it did not express an intent the software ignores.
        checker = checker_for_system(get_system("vsftpd"), caches=caches)
        report = validate_config(
            checker, "ssl_enable=NO\nssl_tlsv1=YES\n"
        )
        assert "dependency-disabled" not in {
            d.code for d in report.errors()
        }


class TestEnvView:
    def test_snapshot_from_os(self):
        system = get_system("mysql")
        env = EnvView.from_os(system.make_os())
        assert env.is_dir("/data/injected_dir")
        assert env.exists("/data/injected_file")
        assert not env.is_dir("/data/injected_file")
        assert 3130 in env.occupied_ports
        assert "mysql" in env.users
        assert env.resolves("localhost") and env.resolves("10.1.2.3")
        assert not env.resolves("no-such-host.invalid")

    def test_compile_with_explicit_env(self, caches):
        system = get_system("mysql")
        spex = Campaign(
            system, inference_cache=caches.inference
        ).run_spex()
        bare = EnvView(
            paths={"/": True},
            occupied_ports=frozenset(),
            users=frozenset(),
            groups=frozenset(),
            hosts=frozenset(),
        )
        checker = compile_checker(spex, system, env=bare)
        # Without the fixture dir the same path is now a missing-path
        # problem instead of a dir-for-file one.
        report = validate_config(
            checker, "ft_stopword_file = /data/injected_dir\n"
        )
        assert "missing-path" in {d.code for d in report.errors()}
