"""Tests for fleet-scale sharded validation."""

import pytest

from repro.checker import run_fleet
from repro.pipeline import PipelineCaches

SYSTEMS = ["mysql", "vsftpd"]


def _summary(report):
    return [
        (
            r.name,
            r.corpus_size,
            r.planted,
            r.flagged,
            r.errors,
            r.warnings,
            sorted(r.by_kind.items()),
            r.scores,
        )
        for r in report.results
    ]


@pytest.fixture(scope="module")
def caches():
    return PipelineCaches()


@pytest.fixture(scope="module")
def serial_report(caches):
    return run_fleet(
        systems=SYSTEMS,
        size=60,
        seed=5,
        executor="serial",
        caches=caches,
        agreement_sample=6,
    )


class TestFleetRun:
    def test_shape_and_scores(self, serial_report):
        assert [r.name for r in serial_report.results] == SYSTEMS
        assert serial_report.total_configs == 120
        for result in serial_report.results:
            assert result.corpus_size == 60
            assert 0 < result.planted < 60
            # Clean configs equal the calibrated template: flagging one
            # would be a checker false positive.
            assert result.scores.false_positives == 0
            assert result.scores.precision == 1.0
            assert result.scores.recall is not None
            assert result.scores.recall > 0.5
        assert serial_report.throughput() > 0

    def test_deterministic_for_fixed_seed(self, serial_report, caches):
        again = run_fleet(
            systems=SYSTEMS, size=60, seed=5, executor="serial",
            caches=caches,
        )
        assert _summary(again) == _summary(serial_report)

    def test_different_seed_changes_fleet(self, serial_report, caches):
        other = run_fleet(
            systems=SYSTEMS, size=60, seed=6, executor="serial",
            caches=caches,
        )
        assert _summary(other) != _summary(serial_report)

    def test_checker_cache_warm_on_second_run(self, serial_report, caches):
        before = caches.checkers.stats.hits
        warm = run_fleet(
            systems=SYSTEMS, size=10, seed=5, executor="serial",
            caches=caches,
        )
        assert caches.checkers.stats.hits >= before + len(SYSTEMS)
        assert all(r.checker_from_cache for r in warm.results)

    def test_agreement_sample_grounded(self, serial_report):
        agreement = serial_report.agreement
        assert agreement is not None
        assert agreement.sampled == 6
        assert agreement.confirmed + agreement.refuted == agreement.sampled
        # The tentpole's ground-truth claim, in miniature: flagged
        # configs overwhelmingly misbehave under the interpreter.
        assert agreement.confirmed >= agreement.refuted
        assert len(agreement.details) == agreement.sampled

    def test_summary_dict_json_able(self, serial_report):
        import json

        decoded = json.loads(json.dumps(serial_report.summary_dict()))
        assert decoded["total_configs"] == 120
        assert decoded["systems"][0]["name"] == "mysql"
        assert decoded["agreement"]["sampled"] == 6

    def test_unknown_system_fails_before_work(self, caches):
        with pytest.raises(KeyError):
            run_fleet(systems=["nope"], size=5, caches=caches)


class TestExecutorParity:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_parity_with_serial(self, serial_report, caches, executor):
        report = run_fleet(
            systems=SYSTEMS,
            size=60,
            seed=5,
            executor=executor,
            caches=caches,
            chunk_size=16,
        )
        assert report.executor == executor
        assert _summary(report) == _summary(serial_report)

    def test_chunk_size_never_changes_results(self, serial_report, caches):
        report = run_fleet(
            systems=SYSTEMS, size=60, seed=5, executor="serial",
            caches=caches, chunk_size=7,
        )
        assert _summary(report) == _summary(serial_report)
