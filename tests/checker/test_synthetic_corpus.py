"""Tests for the synthetic user-config fleet generator."""

import pytest

from repro.checker.corpus import (
    clear_mistake_mixes,
    corpus_pool,
    generate_config,
    iter_corpus,
    kind_of,
    mistake_mix,
    pool_digest,
    register_mistake_mix,
)
from repro.inject.campaign import Campaign
from repro.pipeline import PipelineCaches
from repro.study.cases import case_corpus
from repro.systems import get_system


@pytest.fixture(scope="module")
def caches():
    return PipelineCaches()


@pytest.fixture(scope="module")
def mysql_pool(caches):
    system = get_system("mysql")
    spex = Campaign(system, inference_cache=caches.inference).run_spex()
    return corpus_pool(spex, system)


class TestMistakeMix:
    def test_studied_system_uses_its_own_marginals(self):
        mix = mistake_mix("storage_a")
        expected: dict[str, float] = {}
        for case in case_corpus()["storage_a"]:
            if case.in_spex_scope:
                expected[case.kind] = expected.get(case.kind, 0.0) + 1.0
        assert mix == expected

    def test_unstudied_system_pools_all_marginals(self):
        mix = mistake_mix("vsftpd")
        expected: dict[str, float] = {}
        for cases in case_corpus().values():
            for case in cases:
                if case.in_spex_scope:
                    expected[case.kind] = expected.get(case.kind, 0.0) + 1.0
        assert mix == expected

    def test_override_hook(self):
        try:
            register_mistake_mix("vsftpd", {"range": 3, "basic": 1})
            assert mistake_mix("vsftpd") == {"range": 3.0, "basic": 1.0}
        finally:
            clear_mistake_mixes()

    def test_override_rejects_empty(self):
        with pytest.raises(ValueError):
            register_mistake_mix("vsftpd", {"range": 0})


class TestPool:
    def test_pool_has_every_kind_for_mysql(self, mysql_pool):
        assert {"basic", "semantic", "range", "value_rel"} <= set(mysql_pool)

    def test_extreme_values_excluded(self, mysql_pool):
        for misconfs in mysql_pool.values():
            assert all(m.rule != "extreme-value" for m in misconfs)

    def test_range_plants_actually_violate(self, mysql_pool):
        from repro.core.constraints import (
            EnumRangeConstraint,
            NumericRangeConstraint,
        )

        for misconf in mysql_pool.get("range", []):
            constraint = misconf.constraint
            injected = misconf.settings[0][1]
            if isinstance(constraint, NumericRangeConstraint):
                assert not constraint.contains(float(injected))
            elif isinstance(constraint, EnumRangeConstraint):
                assert not constraint.contains(injected)

    def test_kind_of_matches_pool_keys(self, mysql_pool):
        for kind, misconfs in mysql_pool.items():
            assert all(kind_of(m.constraint) == kind for m in misconfs)

    def test_digest_stable_and_content_sensitive(self, mysql_pool):
        assert pool_digest(mysql_pool) == pool_digest(mysql_pool)
        smaller = {
            kind: misconfs[:-1] for kind, misconfs in mysql_pool.items()
        }
        assert pool_digest(smaller) != pool_digest(mysql_pool)


class TestGeneration:
    def test_config_is_pure_function_of_inputs(self, mysql_pool):
        system = get_system("mysql")
        template = system.template_ar()
        mix = mistake_mix("mysql")
        a = generate_config("mysql", mysql_pool, template, mix, 7, 42)
        b = generate_config("mysql", mysql_pool, template, mix, 7, 42)
        assert a == b
        c = generate_config("mysql", mysql_pool, template, mix, 8, 42)
        assert c.text != a.text or c.mistake != a.mistake

    def test_slices_agree_with_full_stream(self, mysql_pool):
        system = get_system("mysql")
        full = list(iter_corpus(system, mysql_pool, 20, seed=3))
        tail = list(iter_corpus(system, mysql_pool, 8, seed=3, start=12))
        assert full[12:] == tail

    def test_mistake_rate_zero_is_all_clean(self, mysql_pool):
        system = get_system("mysql")
        configs = list(
            iter_corpus(system, mysql_pool, 10, seed=0, mistake_rate=0.0)
        )
        assert all(c.mistake is None for c in configs)
        marker_free = system.template_ar().serialize()
        for config in configs:
            assert config.text.startswith(marker_free)
            assert config.config_id in config.text

    def test_mistake_rate_one_always_plants(self, mysql_pool):
        system = get_system("mysql")
        configs = list(
            iter_corpus(system, mysql_pool, 10, seed=0, mistake_rate=1.0)
        )
        assert all(c.is_mistaken for c in configs)
        for config in configs:
            assert config.mistake_kind == kind_of(config.mistake.constraint)
            # The planted settings really are in the rendered text.
            ar = system.template_ar()
            for name, value in config.mistake.settings:
                ar.set(name, value)
            assert config.text.startswith(ar.serialize())

    def test_mix_restricts_kinds(self, mysql_pool):
        system = get_system("mysql")
        configs = list(
            iter_corpus(
                system,
                mysql_pool,
                20,
                seed=0,
                mistake_rate=1.0,
                mix={"range": 1.0},
            )
        )
        assert {c.mistake_kind for c in configs} == {"range"}
