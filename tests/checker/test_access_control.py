"""Access-control constraints through the check pillar: generator
mistakes, compiled validators, blameless diagnostics, and the
synthetic-corpus loop — all against nginx, the system that carries
the traits.
"""

import pytest

from repro.checker import checker_for_system, validate_config
from repro.checker.corpus import corpus_pool, iter_corpus, mistake_mix
from repro.core.constraints import AccessControlConstraint
from repro.inject.generators import (
    AccessControlViolationPlugin,
    default_generators,
)
from repro.lang.source import Location
from repro.systems import get_system


@pytest.fixture(scope="module")
def system():
    return get_system("nginx")


@pytest.fixture(scope="module")
def checker(system):
    return checker_for_system(system)


def _mutate(system, old: str, new: str) -> str:
    text = system.default_config
    assert old in text
    return text.replace(old, new)


class TestCompiledValidators:
    def test_default_config_is_clean(self, checker, system):
        report = validate_config(checker, system.default_config)
        assert not report.flagged
        assert report.diagnostics == []

    def test_unreadable_root_is_blameless_error(self, checker, system):
        bad = _mutate(
            system, "root /data/nginx/static", "root /data/restricted_dir"
        )
        report = validate_config(checker, bad)
        codes = [d.code for d in report.errors()]
        assert codes == ["read-access-denied"]
        diagnostic = report.errors()[0]
        assert diagnostic.kind == "access_control"
        # Blameless: the message names the identity and where the
        # requirement comes from; the fix offers both repairs (change
        # the mode, or change the identity/path) instead of scolding.
        assert "www-data" in diagnostic.message
        assert "user" in diagnostic.message
        assert "read" in diagnostic.suggestion
        assert diagnostic.evidence.filename == "nginx.c"

    def test_unwritable_upload_store_is_error(self, checker, system):
        bad = _mutate(
            system,
            "upload_store /data/nginx/uploads",
            "upload_store /data/restricted_dir",
        )
        report = validate_config(checker, bad)
        assert [d.code for d in report.errors()] == ["write-access-denied"]

    @pytest.mark.parametrize("mode", ["899", "rwxr"])
    def test_invalid_permission_mode_is_error(self, checker, system, mode):
        bad = _mutate(
            system, "upload_store_mode 0755", f"upload_store_mode {mode}"
        )
        report = validate_config(checker, bad)
        # "rwxr" additionally trips the basic long-type check; the
        # permission-grammar error must be present either way.
        assert "invalid-permission" in [d.code for d in report.errors()]

    def test_world_writable_mode_warns_without_flagging(
        self, checker, system
    ):
        bad = _mutate(
            system, "upload_store_mode 0755", "upload_store_mode 0777"
        )
        report = validate_config(checker, bad)
        assert not report.flagged  # warning-severity, not provably wrong
        assert [d.code for d in report.warnings()] == ["world-writable"]

    def test_identity_change_alone_triggers_the_pair(self, checker, system):
        # The path stays the vendor default; pointing the identity at
        # an unprivileged user breaks the (upload_store owned by
        # www-data) pairing for writes.
        bad = _mutate(system, "user www-data", "user nobody")
        report = validate_config(checker, bad)
        assert "write-access-denied" in [d.code for d in report.errors()]


class TestGeneratorPlugin:
    def test_registered_in_default_roster(self):
        names = {
            plugin.rule_name for plugin in default_generators().plugins
        }
        assert "access-control" in names

    def test_mode_constraint_yields_two_grammar_mistakes(self, system):
        plugin = AccessControlViolationPlugin()
        constraint = AccessControlConstraint(
            "upload_store_mode", Location("nginx.c", 1, 1), operation="mode"
        )
        assert plugin.applies_to(constraint)
        values = [m.settings for m in plugin.generate(constraint, None)]
        assert values == [
            (("upload_store_mode", "899"),),
            (("upload_store_mode", "rwxr"),),
        ]

    def test_path_constraint_pairs_identity_mistake(self):
        plugin = AccessControlViolationPlugin()
        constraint = AccessControlConstraint(
            "root",
            Location("nginx.c", 1, 1),
            operation="read",
            user_param="user",
        )
        (mistake,) = plugin.generate(constraint, None)
        assert mistake.settings == (
            ("root", "/data/restricted_dir"),
            ("user", "nobody"),
        )
        assert mistake.rule == "access-control"


class TestCorpusLoop:
    def test_nginx_mix_includes_access_control(self):
        assert mistake_mix("nginx")["access_control"] > 0

    def test_planted_acl_mistakes_are_caught(self, checker, system):
        from repro.inject.campaign import Campaign

        spex_report = Campaign(system).run_spex()
        pool = corpus_pool(spex_report, system)
        assert "access_control" in pool

        planted = caught = 0
        for config in iter_corpus(system, pool, size=80, seed=7):
            if config.mistake is None:
                continue
            if config.mistake.rule != "access-control":
                continue
            planted += 1
            report = validate_config(checker, config.text)
            if "access_control" in report.kinds_flagged():
                caught += 1
        assert planted >= 1
        assert caught == planted
