"""Tests for the validation driver and diagnostic quality."""

import json

import pytest

from repro.checker import checker_for_system, validate_config
from repro.pipeline import PipelineCaches
from repro.systems import get_system


@pytest.fixture(scope="module")
def mysql_checker():
    return checker_for_system(get_system("mysql"), caches=PipelineCaches())


class TestDiagnosticQuality:
    """Every diagnostic must carry the 'do not blame users' payload:
    an actionable suggestion and the code evidence the constraint was
    inferred from."""

    def test_every_error_has_fix_and_evidence(self, mysql_checker):
        report = validate_config(
            mysql_checker,
            "max_connections = fast\n"
            "ft_min_word_len = 99\n"
            "port = 70000\n"
            "innodb_file_format_check = ANTELOPE\n",
        )
        assert report.flagged
        for diagnostic in report.errors():
            assert diagnostic.suggestion.strip()
            assert diagnostic.message.strip()
            assert diagnostic.evidence.filename
            assert diagnostic.config_line is not None
        # At least some constraints carry real code evidence.
        assert any(
            d.evidence.filename.endswith(".c") and d.evidence.line > 0
            for d in report.errors()
        )

    def test_describe_mentions_fix_and_evidence(self, mysql_checker):
        report = validate_config(mysql_checker, "ft_min_word_len = 99\n")
        text = report.errors()[0].describe()
        assert "fix:" in text and "evidence:" in text

    def test_summary_dict_is_json_able(self, mysql_checker):
        report = validate_config(mysql_checker, "port = 3130\n")
        decoded = json.loads(json.dumps(report.summary_dict()))
        assert decoded["system"] == "mysql"
        assert decoded["flagged"] is True
        assert decoded["diagnostics"][0]["param"] == "port"


class TestValidationDriver:
    def test_first_occurrence_wins(self, mysql_checker):
        # `ConfigAR.get` semantics: a duplicated key keeps its first
        # value, so only the first occurrence is validated.
        report = validate_config(
            mysql_checker, "ft_min_word_len = 5\nft_min_word_len = 99\n"
        )
        assert not report.flagged

    def test_unknown_parameter_warns_with_close_match(self, mysql_checker):
        report = validate_config(mysql_checker, "ft_min_word_leg = 5\n")
        assert not report.flagged  # warnings never flag a config
        (warning,) = report.warnings()
        assert warning.kind == "unknown"
        assert "ft_min_word_len" in warning.suggestion

    def test_unknown_parameter_without_close_match(self, mysql_checker):
        report = validate_config(mysql_checker, "zzz_opt = 5\n")
        (warning,) = report.warnings()
        assert "manual" in warning.suggestion

    def test_parameters_counted(self, mysql_checker):
        report = validate_config(
            mysql_checker, "port = 3307\nzzz_opt = 5\n"
        )
        assert report.parameters_present == 2
        assert report.parameters_checked == 1

    def test_kinds_flagged_deduplicated_in_order(self, mysql_checker):
        report = validate_config(
            mysql_checker,
            "max_connections = fast\n"
            "wait_timeout = slow\n"
            "ft_min_word_len = 99\n",
        )
        kinds = report.kinds_flagged()
        assert kinds[0] == "basic"
        assert len(kinds) == len(set(kinds))

    def test_empty_config_is_clean(self, mysql_checker):
        report = validate_config(mysql_checker, "")
        assert not report.flagged
        assert report.parameters_present == 0
