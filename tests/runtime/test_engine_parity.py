"""Differential parity suite: compiled launch engine vs tree-walker.

The closure-compiled engine (`repro.runtime.compile`) must be
bit-identical to the tree-walking interpreter for every externally
observable channel SPEX-INJ reads: status, exit code, fault signal and
reason, fault location, logs, responses, and the *step count* (fault
classification is step-budget-sensitive, so steps are part of the
contract, not an implementation detail).
"""

import pytest

from repro.lang.program import Program
from repro.runtime.interpreter import InterpreterOptions
from repro.runtime.process import ProcessStatus, run_program
from repro.systems.registry import get_system, system_names


def assert_same_result(compiled, tree):
    assert compiled.status is tree.status
    assert compiled.exit_code == tree.exit_code
    assert compiled.fault_signal == tree.fault_signal
    assert compiled.fault_reason == tree.fault_reason
    assert str(compiled.fault_location) == str(tree.fault_location)
    assert [str(r) for r in compiled.logs] == [str(r) for r in tree.logs]
    assert compiled.responses == tree.responses
    assert compiled.steps == tree.steps


def run_both(source, argv=None, max_steps=2_000_000, max_virtual=600.0):
    program = Program.from_sources({"main.c": source})
    results = []
    for engine in ("compiled", "tree"):
        options = InterpreterOptions(
            max_steps=max_steps,
            max_virtual_seconds=max_virtual,
            engine=engine,
            warm_boot=False,
        )
        results.append(run_program(program, argv=argv, options=options))
    assert_same_result(*results)
    return results[0]


class TestCraftedProgramParity:
    def test_arithmetic_and_control_flow(self):
        result = run_both(
            """
            int main() {
                int total = 0;
                int i;
                for (i = 0; i < 10; i++) {
                    if (i % 2 == 0) { total += i; } else { total -= 1; }
                }
                while (total > 20) { total = total / 2; }
                do { total++; } while (total < 18);
                return total;
            }
            """
        )
        assert result.status is ProcessStatus.EXITED

    def test_switch_fallthrough_and_break(self):
        run_both(
            """
            int classify(int x) {
                int score = 0;
                switch (x) {
                case 1:
                    score += 1;
                case 2:
                    score += 2;
                    break;
                case 3:
                    score += 100;
                    break;
                default:
                    score = 0 - 1;
                }
                return score;
            }
            int main() {
                return classify(1) * 100 + classify(3) + classify(9) + 1;
            }
            """
        )

    def test_statics_structs_pointers_and_strings(self):
        run_both(
            """
            struct counter { int n; char *label; };
            struct counter box;
            int bump() {
                static int calls = 0;
                calls++;
                box.n = box.n + calls;
                return calls;
            }
            int main() {
                int i;
                char *name = "alpha";
                box.label = name + 2;
                for (i = 0; i < 4; i++) { bump(); }
                if (strcmp(box.label, "pha") != 0) { return 50; }
                return box.n;
            }
            """
        )

    def test_function_pointers_and_varargs(self):
        run_both(
            """
            int twice(int x) { return x * 2; }
            int thrice(int x) { return x * 3; }
            struct op { char *name; void *fn; };
            struct op ops[2] = { {"twice", twice}, {"thrice", thrice} };
            int main() {
                int i;
                int total = 0;
                for (i = 0; i < 2; i++) {
                    total += ops[i].fn(i + 4);
                }
                printf("total=%d\\n", total);
                return total;
            }
            """
        )

    def test_segfault_parity(self):
        result = run_both(
            """
            int main() {
                int *p = NULL;
                return *p;
            }
            """
        )
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"

    def test_division_fault_parity(self):
        result = run_both(
            "int main() { int z = 0; return 7 / z; }"
        )
        assert result.fault_signal == "SIGFPE"

    def test_out_of_bounds_parity(self):
        result = run_both(
            """
            int table[3];
            int main() {
                int i;
                for (i = 0; i <= 3; i++) { table[i] = i; }
                return 0;
            }
            """
        )
        assert result.status is ProcessStatus.CRASHED

    def test_recursion_overflow_parity(self):
        result = run_both(
            """
            int spin(int n) { return spin(n + 1); }
            int main() { return spin(0); }
            """
        )
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"

    def test_step_budget_exhaustion_same_step(self):
        result = run_both(
            "int main() { while (1) { } return 0; }",
            max_steps=500,
        )
        assert result.status is ProcessStatus.HUNG
        assert result.steps == 501  # both engines stop at the same tick

    def test_virtual_time_hang_parity(self):
        result = run_both(
            """
            int main() {
                while (1) { sleep(30); }
                return 0;
            }
            """,
            max_virtual=100.0,
        )
        assert result.status is ProcessStatus.HUNG

    def test_integer_wrap_and_casts(self):
        run_both(
            """
            int stored;
            int main() {
                long big = 9000000000;
                stored = (int)big;
                char c = (char)300;
                printf("%d %d\\n", stored, c);
                return sizeof(long) + sizeof(char);
            }
            """
        )

    def test_compound_assignment_and_ternary(self):
        run_both(
            """
            int main() {
                int x = 5;
                x += 3; x <<= 2; x |= 1; x %= 23;
                int y = x > 5 ? x - 5 : x + 5;
                return x * 10 + y;
            }
            """
        )

    def test_errno_and_file_io(self):
        run_both(
            """
            int main() {
                void *fp = fopen("/etc/missing.conf", "r");
                if (fp == NULL) {
                    fprintf(stderr, "open failed errno=%d\\n", errno);
                    return errno;
                }
                return 0;
            }
            """
        )


@pytest.mark.parametrize("name", system_names())
class TestSystemParity:
    """Every registered system: identical launches on both engines."""

    def _options(self, engine):
        return InterpreterOptions(
            max_steps=400_000,
            max_virtual_seconds=120.0,
            engine=engine,
            warm_boot=False,
        )

    def _launch(self, system, config, engine, requests=None):
        os_model = system.make_os()
        system.install_config(os_model, config)
        if requests:
            os_model.queue_requests(requests)
        return run_program(
            system.program(),
            os_model,
            argv=[system.name, system.config_path],
            options=self._options(engine),
        )

    def test_baseline_startup_and_tests(self, name):
        system = get_system(name)
        config = system.default_config
        assert_same_result(
            self._launch(system, config, "compiled"),
            self._launch(system, config, "tree"),
        )
        for test in system.tests:
            assert_same_result(
                self._launch(system, config, "compiled", test.requests),
                self._launch(system, config, "tree", test.requests),
            )

    def test_broken_config_parity(self, name):
        """Faulting and rejecting boots must match too - mangle every
        parameter of the vendor template in turn."""
        system = get_system(name)
        template = system.template_ar()
        for param in list(template.names())[:10]:
            ar = template.clone()
            ar.set(param, "999999999999")
            config = ar.serialize()
            assert_same_result(
                self._launch(system, config, "compiled"),
                self._launch(system, config, "tree"),
            )

    def test_step_budget_regression_guard(self, name):
        """The per-launch instruction budget is part of the engine
        contract: a compiled boot must consume *exactly* as many steps
        as a tree-walking boot, and a squeezed budget must hang both
        engines at the same tick."""
        system = get_system(name)
        config = system.default_config
        compiled = self._launch(system, config, "compiled")
        tree = self._launch(system, config, "tree")
        assert compiled.steps == tree.steps
        squeezed_budget = compiled.steps // 2
        squeezed = [
            run_program(
                system.program(),
                self._broken_os(system, config),
                argv=[system.name, system.config_path],
                options=InterpreterOptions(
                    max_steps=squeezed_budget,
                    max_virtual_seconds=120.0,
                    engine=engine,
                    warm_boot=False,
                ),
            )
            for engine in ("compiled", "tree")
        ]
        assert_same_result(*squeezed)
        assert squeezed[0].status is ProcessStatus.HUNG
        assert squeezed[0].steps == squeezed_budget + 1

    @staticmethod
    def _broken_os(system, config):
        os_model = system.make_os()
        system.install_config(os_model, config)
        return os_model
