"""Differential parity suite: all launch engines vs the tree-walker.

The closure-compiled engine (`repro.runtime.compile`) and the
source-codegen engine (`repro.runtime.codegen`) must be bit-identical
to the tree-walking interpreter for every externally observable
channel SPEX-INJ reads: status, exit code, fault signal and reason,
fault location, logs, responses, and the *step count* (fault
classification is step-budget-sensitive, so steps are part of the
contract, not an implementation detail).

Warm-boot launches are part of the contract too: a launch resumed
from a boot snapshot must be bit-identical to a cold launch of the
same config, on every engine.
"""

import pytest

from repro.lang.program import Program
from repro.runtime.interpreter import InterpreterOptions
from repro.runtime.process import ProcessStatus, run_program
from repro.systems.registry import get_system, system_names

# The tree-walker is the reference; every other engine must match it.
ENGINES = ("tree", "compiled", "codegen")


def assert_same_result(candidate, reference):
    assert candidate.status is reference.status
    assert candidate.exit_code == reference.exit_code
    assert candidate.fault_signal == reference.fault_signal
    assert candidate.fault_reason == reference.fault_reason
    assert str(candidate.fault_location) == str(reference.fault_location)
    assert [str(r) for r in candidate.logs] == [
        str(r) for r in reference.logs
    ]
    assert candidate.responses == reference.responses
    assert candidate.steps == reference.steps


def assert_all_same(results):
    reference = results[0]
    for candidate in results[1:]:
        assert_same_result(candidate, reference)


def run_all(source, argv=None, max_steps=2_000_000, max_virtual=600.0):
    program = Program.from_sources({"main.c": source})
    results = []
    for engine in ENGINES:
        options = InterpreterOptions(
            max_steps=max_steps,
            max_virtual_seconds=max_virtual,
            engine=engine,
            warm_boot=False,
        )
        results.append(run_program(program, argv=argv, options=options))
    assert_all_same(results)
    return results[0]


class TestCraftedProgramParity:
    def test_arithmetic_and_control_flow(self):
        result = run_all(
            """
            int main() {
                int total = 0;
                int i;
                for (i = 0; i < 10; i++) {
                    if (i % 2 == 0) { total += i; } else { total -= 1; }
                }
                while (total > 20) { total = total / 2; }
                do { total++; } while (total < 18);
                return total;
            }
            """
        )
        assert result.status is ProcessStatus.EXITED

    def test_switch_fallthrough_and_break(self):
        run_all(
            """
            int classify(int x) {
                int score = 0;
                switch (x) {
                case 1:
                    score += 1;
                case 2:
                    score += 2;
                    break;
                case 3:
                    score += 100;
                    break;
                default:
                    score = 0 - 1;
                }
                return score;
            }
            int main() {
                return classify(1) * 100 + classify(3) + classify(9) + 1;
            }
            """
        )

    def test_statics_structs_pointers_and_strings(self):
        run_all(
            """
            struct counter { int n; char *label; };
            struct counter box;
            int bump() {
                static int calls = 0;
                calls++;
                box.n = box.n + calls;
                return calls;
            }
            int main() {
                int i;
                char *name = "alpha";
                box.label = name + 2;
                for (i = 0; i < 4; i++) { bump(); }
                if (strcmp(box.label, "pha") != 0) { return 50; }
                return box.n;
            }
            """
        )

    def test_function_pointers_and_varargs(self):
        run_all(
            """
            int twice(int x) { return x * 2; }
            int thrice(int x) { return x * 3; }
            struct op { char *name; void *fn; };
            struct op ops[2] = { {"twice", twice}, {"thrice", thrice} };
            int main() {
                int i;
                int total = 0;
                for (i = 0; i < 2; i++) {
                    total += ops[i].fn(i + 4);
                }
                printf("total=%d\\n", total);
                return total;
            }
            """
        )

    def test_segfault_parity(self):
        result = run_all(
            """
            int main() {
                int *p = NULL;
                return *p;
            }
            """
        )
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"

    def test_division_fault_parity(self):
        result = run_all(
            "int main() { int z = 0; return 7 / z; }"
        )
        assert result.fault_signal == "SIGFPE"

    def test_out_of_bounds_parity(self):
        result = run_all(
            """
            int table[3];
            int main() {
                int i;
                for (i = 0; i <= 3; i++) { table[i] = i; }
                return 0;
            }
            """
        )
        assert result.status is ProcessStatus.CRASHED

    def test_recursion_overflow_parity(self):
        result = run_all(
            """
            int spin(int n) { return spin(n + 1); }
            int main() { return spin(0); }
            """
        )
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"

    def test_step_budget_exhaustion_same_step(self):
        result = run_all(
            "int main() { while (1) { } return 0; }",
            max_steps=500,
        )
        assert result.status is ProcessStatus.HUNG
        assert result.steps == 501  # all engines stop at the same tick

    def test_virtual_time_hang_parity(self):
        result = run_all(
            """
            int main() {
                while (1) { sleep(30); }
                return 0;
            }
            """,
            max_virtual=100.0,
        )
        assert result.status is ProcessStatus.HUNG

    def test_integer_wrap_and_casts(self):
        run_all(
            """
            int stored;
            int main() {
                long big = 9000000000;
                stored = (int)big;
                char c = (char)300;
                printf("%d %d\\n", stored, c);
                return sizeof(long) + sizeof(char);
            }
            """
        )

    def test_compound_assignment_and_ternary(self):
        run_all(
            """
            int main() {
                int x = 5;
                x += 3; x <<= 2; x |= 1; x %= 23;
                int y = x > 5 ? x - 5 : x + 5;
                return x * 10 + y;
            }
            """
        )

    def test_errno_and_file_io(self):
        run_all(
            """
            int main() {
                void *fp = fopen("/etc/missing.conf", "r");
                if (fp == NULL) {
                    fprintf(stderr, "open failed errno=%d\\n", errno);
                    return errno;
                }
                return 0;
            }
            """
        )


@pytest.mark.parametrize("name", system_names())
class TestSystemParity:
    """Every registered system: identical launches on every engine."""

    def _options(self, engine):
        return InterpreterOptions(
            max_steps=400_000,
            max_virtual_seconds=120.0,
            engine=engine,
            warm_boot=False,
        )

    def _launch(self, system, config, engine, requests=None):
        os_model = system.make_os()
        system.install_config(os_model, config)
        if requests:
            os_model.queue_requests(requests)
        return run_program(
            system.program(),
            os_model,
            argv=[system.name, system.config_path],
            options=self._options(engine),
        )

    def test_baseline_startup_and_tests(self, name):
        system = get_system(name)
        config = system.default_config
        assert_all_same(
            [self._launch(system, config, engine) for engine in ENGINES]
        )
        for test in system.tests:
            assert_all_same(
                [
                    self._launch(system, config, engine, test.requests)
                    for engine in ENGINES
                ]
            )

    def test_broken_config_parity(self, name):
        """Faulting and rejecting boots must match too - mangle every
        parameter of the vendor template in turn."""
        system = get_system(name)
        template = system.template_ar()
        for param in list(template.names())[:10]:
            ar = template.clone()
            ar.set(param, "999999999999")
            config = ar.serialize()
            assert_all_same(
                [self._launch(system, config, engine) for engine in ENGINES]
            )

    def test_step_budget_regression_guard(self, name):
        """The per-launch instruction budget is part of the engine
        contract: every engine must consume *exactly* as many steps as
        a tree-walking boot, and a squeezed budget must hang all
        engines at the same tick."""
        system = get_system(name)
        config = system.default_config
        baselines = [
            self._launch(system, config, engine) for engine in ENGINES
        ]
        assert len({result.steps for result in baselines}) == 1
        squeezed_budget = baselines[0].steps // 2
        squeezed = [
            run_program(
                system.program(),
                self._broken_os(system, config),
                argv=[system.name, system.config_path],
                options=InterpreterOptions(
                    max_steps=squeezed_budget,
                    max_virtual_seconds=120.0,
                    engine=engine,
                    warm_boot=False,
                ),
            )
            for engine in ENGINES
        ]
        assert_all_same(squeezed)
        assert squeezed[0].status is ProcessStatus.HUNG
        assert squeezed[0].steps == squeezed_budget + 1

    @staticmethod
    def _broken_os(system, config):
        os_model = system.make_os()
        system.install_config(os_model, config)
        return os_model


@pytest.mark.parametrize("name", system_names())
class TestWarmBootParity:
    """Warm-boot (snapshot resume) launches are bit-identical to cold
    launches, per engine and across engines.

    Exercises the full snapshot protocol through the harness: the
    first launch probes the boot boundary, the second captures the
    copy-on-write snapshot mid-run, the third resumes from it.  All
    three must agree with each other and with every other engine.
    """

    def test_warm_equals_cold_on_every_engine(self, name):
        from repro.inject.harness import InjectionHarness

        system = get_system(name)
        config = system.default_config
        requests = system.tests[0].requests if system.tests else None
        per_engine = []
        for engine in ENGINES:
            harness = InjectionHarness(system, engine=engine)
            assert harness.options.warm_boot
            probe = harness.launch(config)  # cold: learns the boundary
            capture = harness.launch(config)  # cold: captures snapshot
            resumed = harness.launch(config)  # warm: resumes snapshot
            assert_same_result(capture, probe)
            assert_same_result(resumed, probe)
            if requests:
                # Warm boot then request replay, still bit-identical
                # to the cold run_program launch of the same test.
                warm_requests = harness.launch(config, requests)
                cold_os = system.make_os()
                system.install_config(cold_os, config)
                cold_os.queue_requests(requests)
                cold = run_program(
                    system.program(),
                    cold_os,
                    argv=[system.name, system.config_path],
                    options=harness.options,
                )
                assert_same_result(warm_requests, cold)
                per_engine.append((probe, warm_requests))
            else:
                per_engine.append((probe, resumed))
        assert_all_same([pair[0] for pair in per_engine])
        assert_all_same([pair[1] for pair in per_engine])
