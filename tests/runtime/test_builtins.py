"""Unit tests for the emulated libc builtins."""

from repro.lang.program import Program
from repro.runtime.os_model import EmulatedOS
from repro.runtime.process import ProcessStatus, run_program


def run_main(source, os_model=None, argv=None):
    program = Program.from_sources({"main.c": source})
    return run_program(program, os_model, argv)


class TestStringBuiltins:
    def test_strcmp_family(self):
        src = """
        int main() {
            int r = 0;
            if (strcmp("abc", "abc") == 0) { r += 1; }
            if (strcmp("abc", "abd") < 0) { r += 2; }
            if (strcasecmp("ON", "on") == 0) { r += 4; }
            if (strncmp("timeout_ms", "timeout", 7) == 0) { r += 8; }
            if (strncasecmp("MaxConn", "maxconn", 7) == 0) { r += 16; }
            return r;
        }
        """
        assert run_main(src).exit_code == 31

    def test_strchr_strstr(self):
        src = """
        int main() {
            char *s = "key=value";
            char *eq = strchr(s, '=');
            if (eq == NULL) { return 1; }
            if (strcmp(eq + 1, "value") != 0) { return 2; }
            if (strstr(s, "=val") == NULL) { return 3; }
            if (strstr(s, "zzz") != NULL) { return 4; }
            return 0;
        }
        """
        assert run_main(src).exit_code == 0

    def test_str_token(self):
        src = """
        int main() {
            char *line = "  listen_port   2121  ";
            char *k = str_token(line, 0);
            char *v = str_token(line, 1);
            if (strcmp(k, "listen_port") != 0) { return 1; }
            if (strcmp(v, "2121") != 0) { return 2; }
            if (str_token(line, 2) != NULL) { return 3; }
            return 0;
        }
        """
        assert run_main(src).exit_code == 0

    def test_case_helpers(self):
        src = """
        int main() {
            if (tolower('A') != 'a') { return 1; }
            if (toupper('z') != 'Z') { return 2; }
            if (!isdigit('7')) { return 3; }
            if (isdigit('x')) { return 4; }
            if (strcmp(str_lower("MiXeD"), "mixed") != 0) { return 5; }
            return 0;
        }
        """
        assert run_main(src).exit_code == 0


class TestConversionBuiltins:
    def test_atoi_happy_path(self):
        assert run_main('int main() { return atoi("123"); }').exit_code == 123

    def test_atoi_garbage_prefix_semantics(self):
        # The paper's unsafe-API example: atoi("1O0") returns 1.
        assert run_main('int main() { return atoi("1O0"); }').exit_code == 1

    def test_atoi_full_garbage_returns_zero(self):
        assert run_main('int main() { return atoi("fast"); }').exit_code == 0

    def test_atoi_overflow_wraps(self):
        # atoi(INT_MAX+1) wraps: the paper notes atoi cannot detect overflow.
        result = run_main('int main() { long v = atoi("2147483648"); return v < 0; }')
        assert result.exit_code == 1

    def test_strtol_with_end_pointer(self):
        src = """
        int main() {
            char *end;
            long v = strtol("512MB", &end, 10);
            if (v != 512) { return 1; }
            if (strcmp(end, "MB") != 0) { return 2; }
            return 0;
        }
        """
        assert run_main(src).exit_code == 0

    def test_strtol_overflow_sets_errno(self):
        src = """
        int main() {
            errno = 0;
            long v = strtol("99999999999999999999999", NULL, 10);
            return errno == 34;
        }
        """
        assert run_main(src).exit_code == 1

    def test_strtol_base_detection(self):
        src = 'int main() { return strtol("0x10", NULL, 0); }'
        assert run_main(src).exit_code == 16

    def test_sscanf_i_conversion_confusion(self):
        # sscanf("%i") on "1O0" parses just "1": silently wrong value.
        src = """
        int main() {
            int v = 7;
            int n = sscanf("1O0", "%i", &v);
            return v * 10 + n;
        }
        """
        assert run_main(src).exit_code == 11

    def test_sscanf_failure_leaves_garbage(self):
        src = """
        int main() {
            int v = 0;
            int n = sscanf("junk", "%d", &v);
            if (n != 0) { return 1; }
            return v != 0;  /* poisoned, not left at 0 */
        }
        """
        assert run_main(src).exit_code == 1

    def test_sprintf_formats(self):
        src = """
        int main() {
            char *s = sprintf("%s=%d", "port", 8080);
            return strcmp(s, "port=8080") == 0;
        }
        """
        assert run_main(src).exit_code == 1


class TestFileBuiltins:
    def test_open_missing_file_fails(self):
        src = 'int main() { return open("/etc/app.conf", 0); }'
        result = run_main(src)
        assert result.exit_code == -1 & 0xFFFFFFFF or result.exit_code == -1

    def test_open_and_read_lines(self):
        os_model = EmulatedOS()
        os_model.add_file("/etc/app.conf", "alpha\nbeta\n")
        src = """
        int main() {
            void *fp = fopen("/etc/app.conf", "r");
            if (fp == NULL) { return 1; }
            char *l1 = fgets(fp);
            char *l2 = fgets(fp);
            char *l3 = fgets(fp);
            if (strcmp(l1, "alpha") != 0) { return 2; }
            if (strcmp(l2, "beta") != 0) { return 3; }
            if (l3 != NULL) { return 4; }
            fclose(fp);
            return 0;
        }
        """
        assert run_main(src, os_model).exit_code == 0

    def test_fopen_directory_for_read_succeeds_but_fgets_fails(self):
        # Mirrors POSIX: fopen(dir, "r") succeeds, reads fail (the
        # MySQL ft_stopword_file vulnerability path).
        os_model = EmulatedOS()
        os_model.add_dir("/data/dir")
        src = """
        int main() {
            void *fp = fopen("/data/dir", "r");
            if (fp == NULL) { return 1; }
            if (fgets(fp) != NULL) { return 2; }
            return 0;
        }
        """
        assert run_main(src, os_model).exit_code == 0

    def test_fopen_directory_for_write_fails(self):
        os_model = EmulatedOS()
        os_model.add_dir("/data/dir")
        src = 'int main() { return fopen("/data/dir", "w") == NULL; }'
        assert run_main(src, os_model).exit_code == 1

    def test_create_file_with_o_creat(self):
        src = """
        int main() {
            int fd = open("/var/log/app.log", 65);
            return fd > 0 ? 0 : 1;
        }
        """
        assert run_main(src).exit_code == 0

    def test_access_write_permission(self):
        os_model = EmulatedOS()
        node = os_model.add_file("/etc/readonly.conf", "x")
        node.writable = False
        src = """
        int main() {
            if (access("/etc/readonly.conf", 0) != 0) { return 1; }
            if (access("/etc/readonly.conf", 2) == 0) { return 2; }
            return 0;
        }
        """
        assert run_main(src, os_model).exit_code == 0

    def test_is_directory(self):
        src = """
        int main() {
            if (!is_directory("/etc")) { return 1; }
            if (is_directory("/nope")) { return 2; }
            return 0;
        }
        """
        assert run_main(src).exit_code == 0


class TestNetworkBuiltins:
    def test_bind_valid_port(self):
        src = """
        int main() {
            int fd = socket(2, 1, 0);
            return bind(fd, 8080);
        }
        """
        assert run_main(src).exit_code == 0

    def test_bind_occupied_port_fails_with_eaddrinuse(self):
        os_model = EmulatedOS()
        os_model.occupy_port(3130)
        src = """
        int main() {
            int fd = socket(2, 1, 0);
            if (bind(fd, 3130) == 0) { return 1; }
            return errno == 98 ? 0 : 2;
        }
        """
        assert run_main(src, os_model).exit_code == 0

    def test_bind_out_of_range_port_fails(self):
        src = "int main() { return bind(socket(2,1,0), 70000) == 0 ? 1 : 0; }"
        assert run_main(src).exit_code == 0

    def test_inet_addr(self):
        src = """
        int main() {
            if (inet_addr("10.0.0.1") < 0) { return 1; }
            if (inet_addr("999.1.2.3") >= 0) { return 2; }
            if (inet_addr("not-an-ip") >= 0) { return 3; }
            return 0;
        }
        """
        assert run_main(src).exit_code == 0

    def test_getpwnam_users(self):
        src = """
        int main() {
            if (getpwnam("nobody") == NULL) { return 1; }
            if (getpwnam("no_such_user_xyz") != NULL) { return 2; }
            return 0;
        }
        """
        assert run_main(src).exit_code == 0

    def test_gethostbyname(self):
        src = """
        int main() {
            if (gethostbyname("localhost") == NULL) { return 1; }
            if (gethostbyname("unknown.example") != NULL) { return 2; }
            return 0;
        }
        """
        assert run_main(src).exit_code == 0


class TestLoggingAndHarness:
    def test_printf_goes_to_stdout_log(self):
        result = run_main('int main() { printf("listening on %d", 8080); return 0; }')
        assert any(r.stream == "stdout" and "listening on 8080" in r.text for r in result.logs)

    def test_fprintf_stderr(self):
        result = run_main(
            'int main() { fprintf(stderr, "bad value for %s", "timeout"); return 0; }'
        )
        assert any(r.stream == "stderr" and "bad value for timeout" in r.text for r in result.logs)

    def test_request_response_cycle(self):
        os_model = EmulatedOS()
        os_model.queue_requests(["GET /a", "GET /b"])
        src = """
        int main() {
            char *req = recv_request();
            while (req != NULL) {
                send_response(sprintf("OK %s", req));
                req = recv_request();
            }
            return 0;
        }
        """
        result = run_main(src, os_model)
        assert result.responses == ["OK GET /a", "OK GET /b"]

    def test_malloc_negative_returns_null(self):
        src = """
        int main() {
            char *p = malloc(0 - 5);
            return p == NULL;
        }
        """
        assert run_main(src).exit_code == 1

    def test_malloc_large_uses_sparse_arena(self):
        src = """
        int main() {
            char *buf = malloc(1073741824);
            buf[0] = 7;
            buf[1073741823] = 9;
            return buf[0] + buf[1073741823];
        }
        """
        result = run_main(src)
        assert result.exit_code == 16

    def test_malloc_beyond_2g_returns_null_then_deref_crashes(self):
        src = """
        int main() {
            char *buf = malloc(4294967296);
            buf[0] = 1;
            return 0;
        }
        """
        result = run_main(src)
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"

    def test_memset_null_crashes(self):
        result = run_main("int main() { memset(NULL, 0, 16); return 0; }")
        assert result.status is ProcessStatus.CRASHED
