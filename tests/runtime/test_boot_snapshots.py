"""Warm-boot snapshot engine tests (`repro.runtime.snapshot`).

Replayed launches must be indistinguishable from cold launches - same
results, logs, responses, steps - while skipping the boot prefix.  The
crafted server below exercises the probe -> capture -> resume life
cycle directly; the harness tests cover the integration path the
injection campaigns use.
"""

from repro.lang.program import Program
from repro.runtime.interpreter import InterpreterOptions
from repro.runtime.os_model import EmulatedOS
from repro.runtime.process import ProcessStatus, run_program
from repro.runtime.snapshot import (
    BootRecord,
    BootStats,
    BoundaryHint,
    boot_launch,
)
from repro.inject.harness import InjectionHarness
from repro.systems.registry import get_system, system_names

SERVER = """
int booted = 0;
int boot(char *path) {
    void *fp = fopen(path, "r");
    if (fp == NULL) {
        fprintf(stderr, "cannot open config\\n");
        return 0 - 1;
    }
    char *line = fgets(fp);
    if (line != NULL && strcmp(line, "mode=bad") == 0) {
        fprintf(stderr, "bad mode\\n");
        return 0 - 1;
    }
    booted = booted + 1;
    printf("booted\\n");
    return 0;
}
int serve() {
    char *req = recv_request();
    while (req != NULL) {
        send_response(req);
        req = recv_request();
    }
    return 0;
}
int main(int argc, char **argv) {
    if (boot(argv[1]) != 0) {
        return 1;
    }
    send_response("banner");
    serve();
    return 0;
}
"""


def make_program():
    return Program.from_sources({"server.c": SERVER})


def make_os(config="mode=ok"):
    os_model = EmulatedOS()
    os_model.add_file("/etc/server.conf", config)
    return os_model


def options(engine="compiled"):
    return InterpreterOptions(engine=engine)


def cold(program, requests=None, config="mode=ok", engine="compiled"):
    os_model = make_os(config)
    if requests:
        os_model.queue_requests(requests)
    return run_program(
        program, os_model, argv=["server", "/etc/server.conf"],
        options=options(engine),
    )


def warm(program, record, requests=None, config="mode=ok", stats=None,
         hint=None, engine="compiled"):
    return boot_launch(
        program,
        lambda: make_os(config),
        ["server", "/etc/server.conf"],
        options(engine),
        record,
        requests=requests,
        stats=stats,
        hint=hint,
    )


def assert_same_result(a, b):
    assert a.status is b.status
    assert a.exit_code == b.exit_code
    assert a.fault_signal == b.fault_signal
    assert a.fault_reason == b.fault_reason
    assert [str(r) for r in a.logs] == [str(r) for r in b.logs]
    assert a.responses == b.responses
    assert a.steps == b.steps


class TestBootLifecycle:
    def test_probe_learns_boundary(self):
        program = make_program()
        record = BootRecord()
        result = warm(program, record)
        assert result.exited_ok
        assert record.probed
        # main: if(boot) / send_response / serve() / return - the
        # first poll happens inside serve(), statement index 2.
        assert record.boundary == 2
        assert record.snapshot is None  # no hint: probe only learns

    def test_capture_then_resume_bit_identical(self):
        program = make_program()
        record = BootRecord()
        stats = BootStats()
        warm(program, record, stats=stats)  # probe
        captured = warm(program, record, ["a", "b"], stats=stats)  # capture
        assert record.snapshot is not None
        assert stats.boots == 2 and stats.captures == 1
        resumed = warm(program, record, ["a", "b"], stats=stats)  # resume
        assert stats.resumes == 1
        assert_same_result(captured, resumed)
        assert_same_result(resumed, cold(program, ["a", "b"]))

    def test_boot_responses_survive_replay(self):
        """The boot prefix itself sends a banner response; a replayed
        launch must deliver it exactly like a cold one."""
        program = make_program()
        record = BootRecord()
        warm(program, record)
        warm(program, record, ["x"])
        resumed = warm(program, record, ["ping", "pong"])
        assert resumed.responses == ["banner", "ping", "pong"]
        assert_same_result(resumed, cold(program, ["ping", "pong"]))

    def test_failing_boot_never_snapshots(self):
        program = make_program()
        record = BootRecord()
        stats = BootStats()
        first = warm(program, record, config="mode=bad", stats=stats)
        assert first.exit_code == 1
        assert record.probed and record.boundary is None
        again = warm(program, record, ["req"], config="mode=bad", stats=stats)
        assert record.snapshot is None
        assert stats.resumes == 0
        assert_same_result(again, cold(program, ["req"], config="mode=bad"))

    def test_speculative_capture_with_hint(self):
        """With a boundary hint, a fresh config snapshots during its
        very first run (probe and capture merge)."""
        program = make_program()
        hint = BoundaryHint()
        stats = BootStats()
        first = BootRecord()
        warm(program, first, stats=stats, hint=hint)
        assert hint.index == 2
        second = BootRecord()
        warm(program, second, ["a"], config="mode=ok2", stats=stats, hint=hint)
        assert second.snapshot is not None  # captured on first sight
        resumed = warm(program, second, ["z"], config="mode=ok2", stats=stats)
        assert_same_result(resumed, cold(program, ["z"], config="mode=ok2"))

    def test_wrong_hint_discards_speculation(self):
        """A config that fails boot polls nowhere: the speculative
        snapshot taken at the hinted index must be discarded."""
        program = make_program()
        hint = BoundaryHint()
        good = BootRecord()
        warm(program, good, hint=hint)
        bad = BootRecord()
        warm(program, bad, config="mode=bad", hint=hint)
        assert bad.snapshot is None
        assert bad.boundary is None

    def test_tree_engine_snapshots_too(self):
        program = make_program()
        record = BootRecord()
        warm(program, record, engine="tree")
        warm(program, record, ["a"], engine="tree")
        assert record.snapshot is not None
        resumed = warm(program, record, ["a", "b"], engine="tree")
        assert_same_result(resumed, cold(program, ["a", "b"], engine="tree"))

    def test_steps_are_part_of_replayed_state(self):
        program = make_program()
        record = BootRecord()
        warm(program, record)
        warm(program, record, ["a"])
        resumed = warm(program, record, ["a"])
        assert resumed.steps == cold(program, ["a"]).steps > 0


class TestHarnessIntegration:
    def test_snapshot_and_plain_harness_agree_everywhere(self):
        for name in system_names():
            system = get_system(name)
            plain_options = InterpreterOptions(
                max_steps=400_000, max_virtual_seconds=120.0, warm_boot=False
            )
            snap = InjectionHarness(system)
            plain = InjectionHarness(system, options=plain_options)
            config = system.default_config
            assert_same_result(
                snap.launch(config), plain.launch(config)
            )
            for test in system.tests:
                assert_same_result(
                    snap.launch(config, test.requests),
                    plain.launch(config, test.requests),
                )

    def test_harness_resumes_across_tests(self):
        system = get_system("mysql")
        harness = InjectionHarness(system)
        config = system.default_config
        harness.launch(config)
        for test in system.tests:
            harness.launch(config, test.requests)
        stats = harness.boot_stats
        assert stats.resumes >= len(system.tests) - 1
        assert stats.boots <= 2

    def test_shared_snapshot_cache_across_harnesses(self):
        from repro.pipeline.cache import SnapshotCache

        system = get_system("vsftpd")
        cache = SnapshotCache()
        config = system.default_config
        first = InjectionHarness(system, snapshot_cache=cache)
        first.launch(config)
        first.launch(config, system.tests[0].requests)
        second = InjectionHarness(system, snapshot_cache=cache)
        before = cache.boot_stats.resumes
        result = second.launch(config, system.tests[0].requests)
        assert cache.boot_stats.resumes == before + 1
        plain = InjectionHarness(
            system,
            options=InterpreterOptions(
                max_steps=400_000, max_virtual_seconds=120.0, warm_boot=False
            ),
        )
        assert_same_result(
            result, plain.launch(config, system.tests[0].requests)
        )

    def test_silent_violation_evidence_survives_resume(self):
        """Resumed startup results still carry a live interpreter for
        effective-value reads (the silent-violation path)."""
        system = get_system("vsftpd")
        harness = InjectionHarness(system)
        config = system.default_config
        harness.launch(config)
        harness.launch(config, system.tests[0].requests)
        # A fresh startup launch of the same config resumes and must
        # still expose interpreter globals.
        result = harness.launch(config)
        assert result.interpreter is not None
        assert "conf_bool" in result.interpreter.globals or result.interpreter.globals
