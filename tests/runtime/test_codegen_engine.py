"""Unit tier for the source-codegen launch engine and the zero-copy
snapshot machinery it ships with.

The differential contract (codegen == tree == closure on every
observable channel) lives in `test_engine_parity`; this file pins the
codegen engine's own guarantees: deterministic generated source,
correct fault/budget semantics on crafted programs, snapshot
capture/resume under the codegen engine, and the shared-memory
snapshot pool's lifecycle - including that a crashed worker can never
leak a segment.
"""

import pickle

import pytest

from repro.lang.program import Program
from repro.runtime.codegen import (
    CodegenPlan,
    codegen_plan_for,
    compile_codegen,
    generate_source,
)
from repro.runtime.interpreter import InterpreterOptions
from repro.runtime.process import ProcessStatus, run_program
from repro.runtime.snapshot import (
    BootRecord,
    BootSnapshot,
    BootStats,
    SnapshotPool,
    boot_launch,
    copy_state_bundle,
)
from repro.systems.registry import get_system


def _program(source: str) -> Program:
    return Program.from_sources({"main.c": source})


def _run(source_or_program, argv=None, max_steps=2_000_000):
    program = (
        source_or_program
        if isinstance(source_or_program, Program)
        else _program(source_or_program)
    )
    options = InterpreterOptions(
        max_steps=max_steps, engine="codegen", warm_boot=False
    )
    return run_program(program, argv=argv, options=options)


class TestGeneratedSource:
    def test_same_program_instance_is_memoized(self):
        program = _program("int main() { return 3; }")
        assert codegen_plan_for(program) is codegen_plan_for(program)

    def test_identical_sources_generate_identical_text(self):
        source = """
        struct pair { int a; int b; };
        struct pair box = { 1, 2 };
        int add(int x, int y) { return x + y; }
        int main() {
            int i;
            int total = 0;
            for (i = 0; i < 5; i++) { total = add(total, box.a + i); }
            switch (total) { case 15: return 1; default: return total; }
        }
        """
        first = generate_source(_program(source))
        second = generate_source(_program(source))
        assert first == second

    def test_generation_is_repeatable_on_one_program(self):
        program = get_system("vsftpd").program()
        assert generate_source(program) == generate_source(program)

    def test_compiled_plan_shape(self):
        program = _program(
            "int helper() { return 1; }\n"
            "int main() { return helper(); }"
        )
        plan = compile_codegen(program)
        assert isinstance(plan, CodegenPlan)
        assert "helper" in plan.invokes
        assert "main" in plan.invokes
        assert plan.main_steps  # stepwise runners for snapshot boots
        assert plan.bodies == {}  # duck-types LaunchPlan's attribute


class TestCraftedSemantics:
    def test_null_deref_faults(self):
        result = _run("int main() { int *p = NULL; return *p; }")
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"

    def test_step_budget_stops_at_the_exact_tick(self):
        result = _run(
            "int main() { while (1) { } return 0; }", max_steps=400
        )
        assert result.status is ProcessStatus.HUNG
        assert result.steps == 401

    def test_switch_fallthrough(self):
        result = _run(
            """
            int main() {
                int score = 0;
                switch (2) {
                case 1: score += 1;
                case 2: score += 10;
                case 3: score += 100; break;
                case 4: score += 1000;
                }
                return score;
            }
            """
        )
        assert result.exit_code == 110

    def test_function_pointer_dispatch(self):
        result = _run(
            """
            int twice(int x) { return x * 2; }
            struct op { void *fn; };
            struct op table = { twice };
            int main() {
                return table.fn(21);
            }
            """
        )
        assert result.exit_code == 42

    def test_null_function_pointer_faults(self):
        result = _run(
            """
            struct op { void *fn; };
            struct op table = { NULL };
            int main() {
                return table.fn(1);
            }
            """
        )
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"

    def test_static_locals_persist_across_calls(self):
        result = _run(
            """
            int bump() { static int n = 0; n += 1; return n; }
            int main() { bump(); bump(); return bump(); }
            """
        )
        assert result.exit_code == 3

    def test_recursion_overflow_faults(self):
        result = _run(
            """
            int spin(int n) { return spin(n + 1); }
            int main() { return spin(0); }
            """
        )
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"


class TestCodegenSnapshots:
    """Snapshot capture and resume driven by the codegen engine."""

    def _boot(self, system, record, stats, requests=None):
        options = InterpreterOptions(
            max_steps=400_000, max_virtual_seconds=120.0, engine="codegen"
        )

        def make_os():
            os_model = system.make_os()
            system.install_config(os_model, system.default_config)
            return os_model

        return boot_launch(
            system.program(),
            make_os,
            [system.name, system.config_path],
            options,
            record,
            requests=requests,
            stats=stats,
        )

    def test_capture_then_resume_is_identical(self):
        system = get_system("vsftpd")
        record = BootRecord()
        stats = BootStats()
        probe = self._boot(system, record, stats)
        capture = self._boot(system, record, stats)
        assert record.can_resume
        resumed = self._boot(system, record, stats)
        assert stats.resumes == 1
        for launch in (capture, resumed):
            assert launch.status is probe.status
            assert launch.exit_code == probe.exit_code
            assert launch.steps == probe.steps
            assert [str(r) for r in launch.logs] == [
                str(r) for r in probe.logs
            ]

    def test_resume_serves_requests(self):
        system = get_system("vsftpd")
        record = BootRecord()
        stats = BootStats()
        self._boot(system, record, stats)
        self._boot(system, record, stats)
        assert record.can_resume
        requests = system.tests[0].requests
        warm = self._boot(system, record, stats, requests=requests)
        cold_record = BootRecord()
        cold = self._boot(system, cold_record, BootStats(), requests=requests)
        assert warm.responses == cold.responses
        assert warm.steps == cold.steps

    def test_resumes_do_not_share_mutable_state(self):
        """Two launches resumed from one snapshot must not see each
        other's writes - the copy-on-write restore privatizes every
        mutable slot."""
        system = get_system("vsftpd")
        record = BootRecord()
        stats = BootStats()
        self._boot(system, record, stats)
        self._boot(system, record, stats)
        assert record.can_resume
        first = self._boot(system, record, stats)
        second = self._boot(system, record, stats)
        assert first.steps == second.steps
        assert [str(r) for r in first.logs] == [str(r) for r in second.logs]


class TestCopyStateBundle:
    def test_mutable_containers_are_privatized(self):
        inner = {"k": [1, 2]}
        state = {"globals": inner, "alias": inner}
        copied = copy_state_bundle(state)
        assert copied["globals"] is not inner
        # Aliasing is preserved: both keys still point at one dict.
        assert copied["globals"] is copied["alias"]
        copied["globals"]["k"].append(3)
        assert inner["k"] == [1, 2]

    def test_atomic_leaves_are_shared(self):
        state = {"name": "vsftpd", "count": 7, "flag": True, "none": None}
        copied = copy_state_bundle(state)
        assert copied == state


class TestSnapshotPool:
    def _blob(self, tag: str) -> bytes:
        return pickle.dumps({"tag": tag, "payload": list(range(32))})

    def test_publish_fetch_roundtrip(self):
        blob = self._blob("roundtrip")
        with SnapshotPool() as pool:
            pool.publish("key-a", blob, boundary=5)
            entry = pool.manifest["key-a"]
            assert entry[1] == len(blob)
            assert entry[2] == 5
            assert SnapshotPool.fetch(entry) == blob

    def test_manifest_travels_as_plain_data(self):
        with SnapshotPool() as pool:
            pool.publish("key-b", self._blob("pickled"), boundary=9)
            # Worker tasks carry the manifest across a pickle
            # boundary; segments themselves must stay behind.
            manifest = pickle.loads(pickle.dumps(pool.manifest))
            assert SnapshotPool.fetch(manifest["key-b"]) == self._blob(
                "pickled"
            )

    def test_close_unlinks_every_segment(self):
        pool = SnapshotPool()
        pool.publish("key-c", self._blob("gone"), boundary=1)
        entry = pool.manifest["key-c"]
        pool.close()
        assert pool.manifest == {}
        assert SnapshotPool.fetch(entry) is None

    def test_close_is_idempotent(self):
        pool = SnapshotPool()
        pool.publish("key-d", self._blob("twice"), boundary=2)
        pool.close()
        pool.close()

    def test_worker_crash_cannot_leak_segments(self):
        """The parent owns segment lifetime: even when a worker
        attaches and dies without detaching (simulated by fetching and
        simply dropping the bytes), the parent's close() unlinks the
        segment and a later fetch misses cleanly."""
        pool = SnapshotPool()
        pool.publish("key-e", self._blob("crash"), boundary=3)
        entry = pool.manifest["key-e"]
        assert SnapshotPool.fetch(entry) is not None  # worker attached
        pool.close()  # worker never reported back; parent still cleans up
        assert SnapshotPool.fetch(entry) is None

    def test_fetch_missing_segment_returns_none(self):
        assert SnapshotPool.fetch(("repro-no-such-segment", 4, 0)) is None


class TestSnapshotTransport:
    def test_to_blob_roundtrips_through_materialize(self):
        system = get_system("vsftpd")
        record = BootRecord()
        stats = BootStats()
        options = InterpreterOptions(
            max_steps=400_000, max_virtual_seconds=120.0, engine="codegen"
        )

        def make_os():
            os_model = system.make_os()
            system.install_config(os_model, system.default_config)
            return os_model

        argv = [system.name, system.config_path]
        program = system.program()
        probe = boot_launch(
            program, make_os, argv, options, record, stats=stats
        )
        boot_launch(program, make_os, argv, options, record, stats=stats)
        assert record.can_resume
        blob = record.snapshot.to_blob()
        assert isinstance(blob, bytes)
        shipped = BootSnapshot(
            boundary=record.snapshot.boundary, blob=blob
        )
        shipped_record = BootRecord(
            probed=True, boundary=shipped.boundary, snapshot=shipped
        )
        resumed = boot_launch(
            program, make_os, argv, options, shipped_record, stats=stats
        )
        assert resumed.status is probe.status
        assert resumed.steps == probe.steps
        assert [str(r) for r in resumed.logs] == [
            str(r) for r in probe.logs
        ]
