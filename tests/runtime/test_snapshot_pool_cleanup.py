"""Regression tier for `SnapshotPool` shared-memory hygiene: owned
segments are unlinked on close *and* at garbage collection, and
`sweep_orphans` reclaims segments whose owner died without running
either (SIGKILL skips finalizers)."""

import gc
import os
from pathlib import Path

import pytest

from repro.runtime.snapshot import _SEGMENT_PREFIX, SnapshotPool

SHM = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM.is_dir(), reason="needs a /dev/shm listing"
)


def _own_segments() -> set[str]:
    prefix = f"{_SEGMENT_PREFIX}{os.getpid()}-"
    return {p.name for p in SHM.iterdir() if p.name.startswith(prefix)}


class TestOwnedLifecycle:
    def test_segment_names_embed_the_owner_pid(self):
        with SnapshotPool() as pool:
            pool.publish("k", b"payload", 3)
            (name, size, boundary) = pool.manifest["k"]
            assert name.startswith(f"{_SEGMENT_PREFIX}{os.getpid()}-")
            assert size == len(b"payload")
            assert boundary == 3

    def test_close_unlinks_every_segment(self):
        pool = SnapshotPool()
        pool.publish("a", b"x" * 64, 1)
        pool.publish("b", b"y" * 64, 2)
        names = {entry[0] for entry in pool.manifest.values()}
        assert names <= _own_segments()
        pool.close()
        assert not (names & _own_segments())
        assert pool.manifest == {}
        pool.close()  # idempotent

    def test_fetch_roundtrips_and_tolerates_missing(self):
        with SnapshotPool() as pool:
            pool.publish("k", b"hello", 0)
            entry = pool.manifest["k"]
            assert SnapshotPool.fetch(entry) == b"hello"
        # After close the segment is gone: a worker boots cold.
        assert SnapshotPool.fetch(entry) is None

    def test_finalizer_unlinks_when_the_owner_forgot(self):
        pool = SnapshotPool()
        pool.publish("k", b"z" * 32, 0)
        names = {entry[0] for entry in pool.manifest.values()}
        assert names <= _own_segments()
        del pool
        gc.collect()
        assert not (names & _own_segments())


class TestOrphanSweep:
    def _dead_pid(self) -> int:
        """A pid that is certainly not running: fork a child, let it
        exit, reap it."""
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        return pid

    def test_sweep_reclaims_segments_of_dead_owners(self):
        # A SIGKILL'd owner leaves its segment behind with no
        # finalizer run; synthesize exactly that state: a pool-named
        # segment tagged with a dead pid, untracked by this process's
        # resource_tracker (the tracker of the real dead owner died
        # with it).
        from multiprocessing import resource_tracker, shared_memory

        dead = self._dead_pid()
        name = f"{_SEGMENT_PREFIX}{dead}-0"
        segment = shared_memory.SharedMemory(name=name, create=True, size=8)
        segment.buf[:4] = b"orph"
        segment.close()
        resource_tracker.unregister(segment._name, "shared_memory")
        assert (SHM / name).exists()

        assert SnapshotPool.sweep_orphans() >= 1
        assert not (SHM / name).exists()

    def test_sweep_spares_live_owners(self):
        with SnapshotPool() as pool:
            pool.publish("k", b"live", 0)
            names = {entry[0] for entry in pool.manifest.values()}
            SnapshotPool.sweep_orphans()
            assert names <= _own_segments()  # still there: we are alive

    def test_sweep_ignores_foreign_names(self):
        # Non-pool segments and malformed pool names are left alone.
        from multiprocessing import shared_memory

        other = shared_memory.SharedMemory(
            name=f"{_SEGMENT_PREFIX}notapid-0", create=True, size=8
        )
        try:
            SnapshotPool.sweep_orphans()
            assert (SHM / other.name).exists()
        finally:
            other.close()
            other.unlink()
