"""Unit tests for the MiniC interpreter core semantics."""

import pytest

from repro.lang.program import Program
from repro.runtime.interpreter import Interpreter, InterpreterOptions
from repro.runtime.os_model import EmulatedOS
from repro.runtime.process import ProcessStatus, run_program


def run_main(source, argv=None, os_model=None, options=None):
    program = Program.from_sources({"main.c": source})
    return run_program(program, os_model, argv, options)


def eval_expr(expr_text, prelude=""):
    result = run_main(f"{prelude}\nint main() {{ return {expr_text}; }}")
    assert result.status is ProcessStatus.EXITED
    return result.exit_code


class TestArithmetic:
    def test_basic_arithmetic(self):
        assert eval_expr("2 + 3 * 4") == 14

    def test_division_truncates_toward_zero(self):
        assert eval_expr("7 / 2") == 3
        assert eval_expr("(0 - 7) / 2") == -3
        assert eval_expr("7 % (0 - 2)") == 1

    def test_division_by_zero_is_sigfpe_crash(self):
        result = run_main("int main() { int z = 0; return 5 / z; }")
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGFPE"

    def test_shift_and_bitops(self):
        assert eval_expr("(1 << 4) | 3") == 19
        assert eval_expr("0xFF & 0x0F") == 15

    def test_logical_short_circuit(self):
        # Calling an undefined function would be an InterpreterError;
        # short-circuit must skip it.
        src = """
        int boom() { int z = 0; return 1 / z; }
        int main() { return (0 && boom()) + (1 || boom()); }
        """
        assert run_main(src).exit_code == 1

    def test_comparison_yields_int(self):
        assert eval_expr("(3 < 5) + (5 <= 5) + (6 > 7)") == 2

    def test_ternary(self):
        assert eval_expr("1 ? 42 : 7") == 42


class TestIntegerSemantics:
    def test_int32_store_wraps(self):
        # The Figure 5(a) basic-type overflow: 9e9 does not fit in 32 bits.
        src = """
        int stored;
        int main() {
            long big = 9000000000;
            stored = big;
            return stored == 9000000000;
        }
        """
        result = run_main(src)
        assert result.exit_code == 0  # it wrapped
        assert result.interpreter.globals["stored"] == 9000000000 - 2 * (1 << 32)

    def test_cast_truncates(self):
        src = "int main() { long v = 0x1FFFFFFFF; return (int)v == 0xFFFFFFFF; }"
        assert run_main(src).exit_code == 0

    def test_unsigned_short_wrap_via_htons(self):
        src = "int main() { return htons(70000); }"
        assert run_main(src).exit_code == 70000 & 0xFFFF


class TestControlFlow:
    def test_if_else_ladder(self):
        src = """
        int classify(int v) {
            if (v < 4) { return 1; }
            else if (v > 255) { return 2; }
            else { return 0; }
        }
        int main() { return classify(3) * 100 + classify(300) * 10 + classify(50); }
        """
        assert run_main(src).exit_code == 120

    def test_while_loop(self):
        src = "int main() { int i = 0; int s = 0; while (i < 5) { s += i; i++; } return s; }"
        assert run_main(src).exit_code == 10

    def test_for_loop_with_break_continue(self):
        src = """
        int main() {
            int s = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) { continue; }
                if (i > 8) { break; }
                s += i;
            }
            return s;
        }
        """
        assert run_main(src).exit_code == 1 + 3 + 5 + 7

    def test_do_while_runs_once(self):
        src = "int main() { int n = 0; do { n++; } while (0); return n; }"
        assert run_main(src).exit_code == 1

    def test_switch_with_fallthrough_and_default(self):
        src = """
        int pick(int v) {
            int r = 0;
            switch (v) {
                case 1: r += 1;
                case 2: r += 2; break;
                case 3: r += 3; break;
                default: r = 99;
            }
            return r;
        }
        int main() { return pick(1) * 1000 + pick(3) * 100 + pick(7); }
        """
        assert run_main(src).exit_code == 3 * 1000 + 3 * 100 + 99

    def test_infinite_loop_is_hang(self):
        result = run_main(
            "int main() { while (1) { } return 0; }",
            options=InterpreterOptions(max_steps=10_000),
        )
        assert result.status is ProcessStatus.HUNG

    def test_huge_sleep_is_hang(self):
        result = run_main(
            "int main() { sleep(100000); return 0; }",
            options=InterpreterOptions(max_virtual_seconds=60),
        )
        assert result.status is ProcessStatus.HUNG


class TestPointersAndStructs:
    def test_address_of_and_deref(self):
        src = """
        int set(int *p, int v) { *p = v; return 0; }
        int main() { int x = 1; set(&x, 42); return x; }
        """
        assert run_main(src).exit_code == 42

    def test_struct_fields(self):
        src = """
        struct conf { int timeout; char *name; };
        struct conf cfg;
        int main() {
            cfg.timeout = 30;
            cfg.name = "server";
            return cfg.timeout + strlen(cfg.name);
        }
        """
        assert run_main(src).exit_code == 36

    def test_struct_pointer_arrow(self):
        src = """
        struct conf { int limit; };
        struct conf cfg;
        int bump(struct conf *c) { c->limit += 5; return c->limit; }
        int main() { cfg.limit = 10; return bump(&cfg); }
        """
        assert run_main(src).exit_code == 15

    def test_null_deref_is_segfault(self):
        result = run_main("int main() { int *p = NULL; return *p; }")
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"
        assert any("Segmentation fault" in r.text for r in result.logs)

    def test_null_arrow_is_segfault(self):
        src = """
        struct conf { int x; };
        int main() { struct conf *c = NULL; return c->x; }
        """
        result = run_main(src)
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"

    def test_array_out_of_bounds_is_segfault(self):
        src = "int tbl[4]; int main() { return tbl[10]; }"
        result = run_main(src)
        assert result.status is ProcessStatus.CRASHED

    def test_global_struct_array_initializer(self):
        src = """
        struct entry { char *name; int value; };
        struct entry table[] = {
            { "alpha", 1 },
            { "beta", 2 },
        };
        int main() { return table[1].value; }
        """
        assert run_main(src).exit_code == 2

    def test_mapping_table_with_addresses(self):
        src = """
        struct config_int { char *name; int *var; int def; };
        int DeadlockTimeout;
        struct config_int table[] = {
            { "deadlock_timeout", &DeadlockTimeout, 1000 },
        };
        int main() {
            *table[0].var = table[0].def;
            return DeadlockTimeout == 1000;
        }
        """
        assert run_main(src).exit_code == 1

    def test_function_pointer_dispatch(self):
        src = """
        struct cmd { char *name; int handler; };
        int set_root(int v) { return v * 2; }
        int main() {
            int f = 0;
            struct cmd c;
            c.handler = 0;
            return dispatch();
        }
        int dispatch() { return 0; }
        """
        # Simpler direct check of indirect calls through a table:
        src = """
        struct cmd { char *name; int (handler); };
        int double_it(int v) { return v * 2; }
        int main() { return 0; }
        """
        # Real test: store FunctionRef in struct field typed as pointer.
        src = """
        struct cmd { char *name; void *handler; };
        int double_it(int v) { return v * 2; }
        struct cmd table[] = { { "double", double_it } };
        int main() { return table[0].handler(21); }
        """
        assert run_main(src).exit_code == 42

    def test_static_local_persists(self):
        src = """
        int counter() { static int n = 0; n++; return n; }
        int main() { counter(); counter(); return counter(); }
        """
        assert run_main(src).exit_code == 3

    def test_recursion_and_stack_overflow(self):
        src = "int f(int n) { return f(n + 1); } int main() { return f(0); }"
        result = run_main(src)
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGSEGV"

    def test_string_indexing(self):
        src = 'int main() { char *s = "abc"; return s[0] + s[3]; }'
        assert run_main(src).exit_code == ord("a")  # s[3] is the NUL

    def test_string_pointer_arithmetic(self):
        src = 'int main() { char *s = "abc"; return strcmp(s + 1, "bc") == 0; }'
        assert run_main(src).exit_code == 1


class TestMainArguments:
    def test_argv_passed(self):
        src = """
        int main(int argc, char **argv) {
            if (argc < 2) { return 1; }
            return strcmp(argv[1], "/etc/app.conf") == 0 ? 0 : 2;
        }
        """
        result = run_main(src, argv=["app", "/etc/app.conf"])
        assert result.exit_code == 0

    def test_exit_builtin(self):
        result = run_main("int main() { exit(7); return 0; }")
        assert result.exit_code == 7

    def test_abort_is_sigabrt(self):
        result = run_main("int main() { abort(); return 0; }")
        assert result.status is ProcessStatus.CRASHED
        assert result.fault_signal == "SIGABRT"


class TestEnumAndGlobals:
    def test_enum_values(self):
        src = """
        enum level { LOW = 1, MID, HIGH = 10 };
        int main() { return LOW + MID + HIGH; }
        """
        assert run_main(src).exit_code == 13

    def test_global_zero_initialized(self):
        src = "int uninit; int main() { return uninit; }"
        assert run_main(src).exit_code == 0

    def test_errno_global(self):
        src = """
        int main() {
            int fd = open("/does/not/exist", 0);
            if (fd < 0 && errno == 2) { return 0; }
            return 1;
        }
        """
        assert run_main(src).exit_code == 0
