"""Shared fixtures for the serve test tier.

One `PipelineCaches` is warmed once per session (checker compilation
for all seven systems), so every service instance the tests stand up
starts in milliseconds; parity tests build their *reference* results
from fresh caches instead (`serveutil.cold_reference`), so the
comparison side really is the cold `check` path.
"""

from __future__ import annotations

import pytest

from repro.checker import checker_for_system
from repro.pipeline.cache import PipelineCaches
from repro.serve import BackgroundServer, ValidationService
from repro.systems.registry import iter_systems


@pytest.fixture(scope="session")
def warm_caches() -> PipelineCaches:
    """Caches with every system's checker compiled once."""
    caches = PipelineCaches()
    for system in iter_systems(None):
        checker_for_system(system, caches=caches)
    return caches


@pytest.fixture
def make_service(warm_caches):
    """Factory for services that warm instantly off the shared caches."""

    def build(systems=None, **kwargs) -> ValidationService:
        return ValidationService(
            systems=systems, caches=warm_caches, **kwargs
        )

    return build


@pytest.fixture(scope="session")
def server(warm_caches):
    """One background server for the whole session, serving all seven
    systems.  Tests isolate through unique config_ids."""
    with BackgroundServer(caches=warm_caches) as handle:
        yield handle
