"""Service-core behaviour: warm-up, checking, history, eviction."""

import pytest

from repro.serve import MAX_HISTORY_DEPTH, ServeError
from repro.serve.service import _diff

from serveutil import BAD_MYSQL, CLEAN_MYSQL, cold_reference, run


class TestLifecycle:
    def test_start_warms_requested_systems(self, make_service):
        async def main():
            service = make_service(systems=["mysql", "squid"])
            await service.start()
            try:
                return service.status()
            finally:
                await service.close()

        status = run(main())
        assert status.systems == ("mysql", "squid")
        assert status.warmup_seconds > 0

    def test_unknown_system_fails_at_construction(self, make_service):
        with pytest.raises(KeyError):
            make_service(systems=["bogus"])

    def test_check_before_start_refused(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.check_config("mysql", "")

        with pytest.raises(ServeError) as excinfo:
            run(main())
        assert excinfo.value.code == "bad-request"

    def test_start_is_idempotent(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            first = service.status().warmup_seconds
            await service.start()
            try:
                return first, service.status().warmup_seconds
            finally:
                await service.close()

        first, second = run(main())
        assert first == second

    def test_unserved_system_refused(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                await service.check_config("squid", "")
            finally:
                await service.close()

        with pytest.raises(ServeError) as excinfo:
            run(main())
        assert excinfo.value.code == "unknown-system"


class TestChecking:
    def test_clean_template_not_flagged(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                from repro.systems.registry import get_system

                return await service.check_config(
                    "mysql", get_system("mysql").default_config
                )
            finally:
                await service.close()

        response = run(main())
        assert not response.flagged and response.errors == 0

    def test_bad_config_flagged_and_matches_cold_check(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                return await service.check_config(
                    "mysql", BAD_MYSQL, page_size=100
                )
            finally:
                await service.close()

        response = run(main())
        reference = cold_reference("mysql", BAD_MYSQL)
        assert response.flagged
        assert response.errors == len(reference.errors())
        assert response.warnings == len(reference.warnings())
        assert list(response.page.items) == [
            d.summary_dict() for d in reference.diagnostics
        ]

    def test_counters_advance(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                await service.check_config("mysql", CLEAN_MYSQL)
                await service.check_config(
                    "mysql", BAD_MYSQL, config_id="tracked"
                )
                return service.status()
            finally:
                await service.close()

        status = run(main())
        assert status.checks_served == 2
        assert status.configs_tracked == 1
        assert status.results_retained == 2


class TestHistory:
    def test_anonymous_submission_has_no_history(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                first = await service.check_config("mysql", BAD_MYSQL)
                second = await service.check_config("mysql", BAD_MYSQL)
                return first, second
            finally:
                await service.close()

        first, second = run(main())
        assert first.revision == 1 and second.revision == 1
        assert first.history is None and second.history is None

    def test_revisions_and_delta(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                first = await service.check_config(
                    "mysql", BAD_MYSQL, config_id="c"
                )
                second = await service.check_config(
                    "mysql", CLEAN_MYSQL + "made_up_param = 1\n",
                    config_id="c",
                )
                return first, second
            finally:
                await service.close()

        first, second = run(main())
        assert (first.revision, second.revision) == (1, 2)
        assert first.history is None
        delta = second.history
        assert delta.previous_revision == 1
        # The range error and its value-relationship sibling are fixed;
        # the unknown-parameter warning survives.
        assert len(delta.removed) == first.errors
        assert delta.added == ()
        assert delta.unchanged == 1

    def test_new_finding_is_added(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                await service.check_config(
                    "mysql", CLEAN_MYSQL, config_id="c"
                )
                return await service.check_config(
                    "mysql", "ft_min_word_len = 99\n", config_id="c"
                )
            finally:
                await service.close()

        second = run(main())
        assert len(second.history.added) == second.errors
        assert second.history.removed == ()

    def test_line_moves_are_unchanged(self, make_service):
        """The diff keys findings by what they are, not where they sit."""

        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                await service.check_config(
                    "mysql", "ft_min_word_len = 99\n", config_id="c"
                )
                return await service.check_config(
                    "mysql",
                    "# a comment pushes everything down\n"
                    "ft_min_word_len = 99\n",
                    config_id="c",
                )
            finally:
                await service.close()

        second = run(main())
        assert second.history.added == ()
        assert second.history.removed == ()
        assert second.history.unchanged == second.errors + second.warnings

    def test_history_endpoint_and_unknown_config(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                for text in (BAD_MYSQL, CLEAN_MYSQL, BAD_MYSQL):
                    await service.check_config(
                        "mysql", text, config_id="audit"
                    )
                history = service.history("mysql", "audit")
                with pytest.raises(ServeError) as excinfo:
                    service.history("mysql", "nobody")
                return history, excinfo.value.code
            finally:
                await service.close()

        history, code = run(main())
        assert history.revision == 3
        assert len(history.deltas) == 2
        assert [d.revision for d in history.deltas] == [2, 3]
        assert code == "unknown-config"

    def test_history_depth_is_bounded(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                for i in range(MAX_HISTORY_DEPTH + 5):
                    await service.check_config(
                        "mysql",
                        f"ft_min_word_len = {5 + i % 2}\n",
                        config_id="deep",
                    )
                return service.history("mysql", "deep")
            finally:
                await service.close()

        history = run(main())
        assert history.revision == MAX_HISTORY_DEPTH + 5
        assert len(history.deltas) == MAX_HISTORY_DEPTH
        # Oldest deltas fell off the front; the tail is contiguous.
        assert history.deltas[-1].revision == history.revision


class TestEviction:
    def test_result_eviction_expires_cursors(self, make_service):
        async def main():
            service = make_service(systems=["mysql"], max_results=2)
            await service.start()
            try:
                first = await service.check_config(
                    "mysql", BAD_MYSQL, page_size=1
                )
                assert first.page.cursor is not None
                # Two more submissions evict the first snapshot.
                await service.check_config("mysql", BAD_MYSQL + "a = 1\n")
                await service.check_config("mysql", BAD_MYSQL + "b = 2\n")
                with pytest.raises(ServeError) as excinfo:
                    service.page(first.page.cursor)
                return excinfo.value.code
            finally:
                await service.close()

        assert run(main()) == "cursor-expired"


class TestDiff:
    def test_multiset_semantics(self):
        one = {"param": "p", "code": "c", "severity": "error",
               "message": "m", "config_line": 1}
        dup = dict(one, config_line=9)
        other = {"param": "q", "code": "c", "severity": "error",
                 "message": "n", "config_line": 2}
        delta = _diff((one, dup), (one, other), revision=2)
        assert delta.unchanged == 1
        assert delta.added == (other,)
        # One of the two identity-equal duplicates is gone; which
        # config_line it carried is not part of the finding identity.
        assert len(delta.removed) == 1
        assert delta.removed[0]["param"] == "p"
