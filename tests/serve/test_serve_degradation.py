"""Graceful degradation of the serve tier: load shedding, per-request
deadlines, and per-system circuit breakers — every refusal typed,
nothing unbounded, breakers recovering half-open → closed."""

import asyncio

import pytest
from serveutil import run

from repro.serve import ServeError
from repro.serve.models import FleetStatus

CONFIG = "ft_min_word_len = 5\n"


class _Clock:
    """Injectable monotonic clock driving breaker cool-downs."""

    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


class TestLoadShedding:
    def test_overloaded_requests_get_typed_refusals(self, make_service):
        async def scenario():
            service = make_service(
                systems=["mysql"], max_pending=1
            )
            await service.start()
            try:
                gate = asyncio.Event()

                async def stuck(request):
                    await gate.wait()
                    raise AssertionError("never reached")

                real_inner = service._check_inner
                service._check_inner = stuck
                first = asyncio.ensure_future(
                    service.check_config("mysql", CONFIG)
                )
                await asyncio.sleep(0)  # let it occupy the slot
                outcomes = await asyncio.gather(
                    service.check_config("mysql", CONFIG),
                    service.check_config("mysql", CONFIG),
                    return_exceptions=True,
                )
                # Unblock the occupant through the real path.
                service._check_inner = real_inner
                gate.set()
                first.cancel()
                try:
                    await first
                except (asyncio.CancelledError, ServeError):
                    pass
                return outcomes, service.status()
            finally:
                await service.close()

        outcomes, status = run(scenario())
        assert all(isinstance(o, ServeError) for o in outcomes)
        assert {o.code for o in outcomes} == {"overloaded"}
        assert status.resilience["shed"] == 2
        assert status.resilience["max_pending"] == 1

    def test_unbounded_by_default(self, make_service):
        async def scenario():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                response = await service.check_config("mysql", CONFIG)
                return response, service.status()
            finally:
                await service.close()

        response, status = run(scenario())
        assert response.system == "mysql"
        assert status.resilience["max_pending"] is None
        assert status.resilience["shed"] == 0


class TestDeadlines:
    def test_stuck_check_becomes_typed_deadline(self, make_service):
        async def scenario():
            service = make_service(
                systems=["mysql"], deadline_seconds=0.05
            )
            await service.start()
            try:
                async def stuck(request):
                    await asyncio.sleep(5)

                service._check_inner = stuck
                with pytest.raises(ServeError) as excinfo:
                    await service.check_config("mysql", CONFIG)
                return excinfo.value, service.status()
            finally:
                await service.close()

        error, status = run(scenario())
        assert error.code == "deadline"
        assert status.resilience["deadline_timeouts"] == 1

    def test_fast_checks_unaffected_by_a_generous_deadline(
        self, make_service
    ):
        async def scenario():
            service = make_service(
                systems=["mysql"], deadline_seconds=30.0
            )
            await service.start()
            try:
                return await service.check_config("mysql", CONFIG)
            finally:
                await service.close()

        assert run(scenario()).system == "mysql"


class TestCircuitBreaker:
    def test_full_lifecycle_trip_cool_down_probe_close(self, make_service):
        clock = _Clock()

        async def scenario():
            service = make_service(
                systems=["mysql"],
                circuit_threshold=2,
                circuit_reset_seconds=10.0,
                clock=clock,
            )
            await service.start()
            try:
                real_inner = service._check_inner

                async def crash(request):
                    raise RuntimeError("checker exploded")

                service._check_inner = crash
                faults = []
                for _ in range(2):
                    with pytest.raises(ServeError) as excinfo:
                        await service.check_config("mysql", CONFIG)
                    faults.append(excinfo.value.code)
                breaker = service._breakers["mysql"]
                tripped = breaker.state
                # While open, requests are refused before any work.
                with pytest.raises(ServeError) as excinfo:
                    await service.check_config("mysql", CONFIG)
                refusal = excinfo.value.code
                # Cool-down elapses: the next request is the probe.
                clock.advance(11.0)
                half = breaker.state
                service._check_inner = real_inner
                probe = await service.check_config("mysql", CONFIG)
                return (
                    faults,
                    tripped,
                    refusal,
                    half,
                    probe,
                    breaker.state,
                    service.status(),
                )
            finally:
                await service.close()

        faults, tripped, refusal, half, probe, closed, status = run(
            scenario()
        )
        assert faults == ["checker-fault", "checker-fault"]
        assert tripped == "open"
        assert refusal == "circuit-open"
        assert half == "half-open"
        assert probe.system == "mysql"
        assert closed == "closed"
        assert status.resilience["checker_faults"] == 2
        assert status.resilience["circuit_open"] == 1
        assert status.resilience["breakers"] == {"mysql": "closed"}

    def test_failed_probe_reopens(self, make_service):
        clock = _Clock()

        async def scenario():
            service = make_service(
                systems=["mysql"],
                circuit_threshold=1,
                circuit_reset_seconds=10.0,
                clock=clock,
            )
            await service.start()
            try:
                async def crash(request):
                    raise RuntimeError("still broken")

                service._check_inner = crash
                with pytest.raises(ServeError):
                    await service.check_config("mysql", CONFIG)
                clock.advance(11.0)
                with pytest.raises(ServeError) as excinfo:
                    await service.check_config("mysql", CONFIG)
                return excinfo.value.code, service._breakers["mysql"].state
            finally:
                await service.close()

        probe_code, state = run(scenario())
        assert probe_code == "checker-fault"  # the probe ran, and failed
        assert state == "open"  # straight back to a full cool-down

    def test_typed_refusals_do_not_trip_the_breaker(self, make_service):
        async def scenario():
            service = make_service(
                systems=["mysql"], circuit_threshold=1
            )
            await service.start()
            try:
                async def refuse(request):
                    raise ServeError("bad-request", "typed, deliberate")

                service._check_inner = refuse
                with pytest.raises(ServeError) as excinfo:
                    await service.check_config("mysql", CONFIG)
                return excinfo.value.code, service._breakers["mysql"].state
            finally:
                await service.close()

        code, state = run(scenario())
        assert code == "bad-request"
        assert state == "closed"


class TestStatusSchema:
    def test_resilience_block_roundtrips_the_wire(self, make_service):
        async def scenario():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                return service.status()
            finally:
                await service.close()

        status = run(scenario())
        wire = status.summary_dict()
        assert set(wire["resilience"]) == {
            "max_pending",
            "deadline_seconds",
            "shed",
            "deadline_timeouts",
            "circuit_open",
            "checker_faults",
            "breakers",
        }
        rehydrated = FleetStatus.from_dict(wire)
        assert rehydrated.resilience == status.resilience

    def test_old_payload_without_resilience_still_parses(self):
        # Additive schema change: a pre-resilience server's status
        # payload must rehydrate with an empty resilience block.
        status = FleetStatus(
            schema_version=1,
            systems=("mysql",),
            checks_served=0,
            configs_tracked=0,
            results_retained=0,
            uptime_seconds=0.0,
            warmup_seconds=0.0,
            workers=1,
            cache_stats={},
        )
        wire = status.summary_dict()
        wire.pop("resilience")
        assert FleetStatus.from_dict(wire).resilience == {}
