"""Concurrency hardening: the service under parallel clients.

The headline invariant (the PR's acceptance bar): diagnostics served
by `repro.serve` under >=8 concurrent clients are **bit-identical** to
cold serial `check` runs, for every registered system.  This reuses
the executor-parity pattern of the pipeline/launch tiers: the
concurrent path must be an optimization, never a semantic fork.
"""

import asyncio
import json

from repro.serve import ServeClient
from repro.systems.registry import iter_systems

from serveutil import BAD_MYSQL, cold_reference, probe_configs, run

N_CLIENTS = 8


class TestServiceVsColdCliParity:
    def test_eight_clients_all_systems_bit_identical(self, server):
        """Acceptance: 8 concurrent socket clients x 7 systems, every
        response identical to an independent cold check."""
        probes = {
            system.name: probe_configs(system)
            for system in iter_systems(None)
        }

        async def one_client(client_index: int):
            client = await ServeClient.connect(server.host, server.port)
            try:
                results = {}
                for name, configs in probes.items():
                    for i, text in enumerate(configs):
                        response, items = await client.check_all(
                            name, text, page_size=25
                        )
                        results[(name, i)] = (
                            response.flagged,
                            response.errors,
                            response.warnings,
                            json.dumps(items, sort_keys=True),
                        )
                return results
            finally:
                await client.close()

        async def main():
            return await asyncio.gather(
                *(one_client(i) for i in range(N_CLIENTS))
            )

        all_results = run(main())
        assert len(all_results) == N_CLIENTS

        references = {}
        for name, configs in probes.items():
            for i, text in enumerate(configs):
                report = cold_reference(name, text)
                references[(name, i)] = (
                    report.flagged,
                    len(report.errors()),
                    len(report.warnings()),
                    json.dumps(
                        [d.summary_dict() for d in report.diagnostics],
                        sort_keys=True,
                    ),
                )

        for client_results in all_results:
            assert client_results == references

    def test_probe_set_is_not_trivial(self):
        """The parity claim is only as strong as the probe corpus:
        at least one probe per system must actually flag."""
        flagged = 0
        for system in iter_systems(None):
            for text in probe_configs(system):
                if cold_reference(system.name, text).flagged:
                    flagged += 1
                    break
        assert flagged >= 5  # most systems' mangled templates trip


class TestInProcessConcurrency:
    def test_gathered_checks_match_serial(self, make_service):
        configs = [
            BAD_MYSQL,
            "ft_min_word_len = 5\n",
            "port = 70000\n",
            "",
        ] * 8  # 32 interleaved submissions

        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                serial = []
                for text in configs:
                    response = await service.check_config(
                        "mysql", text, page_size=100
                    )
                    serial.append(list(response.page.items))
                concurrent = await asyncio.gather(
                    *(
                        service.check_config("mysql", text, page_size=100)
                        for text in configs
                    )
                )
                return serial, [list(r.page.items) for r in concurrent]
            finally:
                await service.close()

        serial, concurrent = run(main())
        assert serial == concurrent

    def test_concurrent_same_identity_revisions_are_a_permutation(
        self, make_service
    ):
        submissions = 16

        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                responses = await asyncio.gather(
                    *(
                        service.check_config(
                            "mysql",
                            f"ft_min_word_len = {5 + i % 3}\n",
                            config_id="shared",
                        )
                        for i in range(submissions)
                    )
                )
                history = service.history("mysql", "shared")
                return responses, history
            finally:
                await service.close()

        responses, history = run(main())
        # Arrival order is nondeterministic, but revisions must be a
        # permutation of 1..N: no duplicates, no gaps, no lost updates.
        assert sorted(r.revision for r in responses) == list(
            range(1, submissions + 1)
        )
        assert history.revision == submissions

    def test_concurrent_distinct_identities_stay_independent(
        self, make_service
    ):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                await asyncio.gather(
                    *(
                        service.check_config(
                            "mysql",
                            BAD_MYSQL,
                            config_id=f"user-{i % 4}",
                        )
                        for i in range(12)
                    )
                )
                return service.status(), [
                    service.history("mysql", f"user-{i}").revision
                    for i in range(4)
                ]
            finally:
                await service.close()

        status, revisions = run(main())
        assert status.configs_tracked == 4
        assert revisions == [3, 3, 3, 3]

    def test_counters_consistent_under_load(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                await asyncio.gather(
                    *(
                        service.check_config("mysql", f"x{i} = 1\n")
                        for i in range(20)
                    )
                )
                return service.status()
            finally:
                await service.close()

        status = run(main())
        assert status.checks_served == 20
        assert status.results_retained == 20  # all texts distinct


class TestMetricsOpConcurrency:
    def test_eight_clients_interleaving_checks_and_metrics(
        self, make_service
    ):
        """The metrics op under churn: 8 clients each submit 4 checks
        interleaved with metrics reads.  Every metrics response must be
        internally consistent (histogram totals match their buckets)
        and the final snapshot must account for every request exactly
        once."""
        checks_per_client = 4

        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                async def one_client(index):
                    seen = []
                    for i in range(checks_per_client):
                        await service.check_config(
                            "mysql", f"client{index}_{i} = 1\n"
                        )
                        seen.append(service.metrics())
                    return seen

                interleaved = await asyncio.gather(
                    *(one_client(i) for i in range(N_CLIENTS))
                )
                return interleaved, service.metrics(limit=100)
            finally:
                await service.close()

        interleaved, final = run(main())
        for responses in interleaved:
            for metrics in responses:
                hist = metrics.histograms.get("serve.check_seconds")
                if hist is not None:
                    assert sum(hist["counts"]) == hist["count"]
                assert metrics.counters.get("serve.requests", 0) >= 1
        total = N_CLIENTS * checks_per_client
        assert final.checks_served == total
        assert final.counters["serve.requests"] == total
        assert final.histograms["serve.check_seconds"]["count"] == total
        assert final.warmup_by_system == {
            "mysql": final.warmup_by_system["mysql"]
        }

    def test_metrics_over_the_wire_respects_limit(self, server):
        """Socket-level metrics op: a limit of 1 bounds every family
        and reports the truncation."""
        async def main():
            client = await ServeClient.connect(server.host, server.port)
            try:
                await client.check("mysql", BAD_MYSQL)
                return await client.metrics(limit=1)
            finally:
                await client.close()

        metrics = run(main())
        assert len(metrics.counters) <= 1
        assert len(metrics.gauges) <= 1
        assert len(metrics.histograms) <= 1
        assert metrics.truncated is True
