"""Golden-schema regression tests for every ``--json`` CLI output.

Each machine-readable CLI surface (pipeline, check, fleet, serve
status, submit) is reduced to a *schema*: the recursive key set plus
value types, with list element types unioned.  The schemas are checked
in under ``tests/serve/golden/`` — a field rename, a dropped key, or a
type drift (int becoming float, nullable becoming required) fails the
suite even though the values themselves change run to run.

Regenerate after an intentional schema change with::

    UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/serve/test_golden_schemas.py -q
"""

import asyncio
import json
import os
from pathlib import Path

import pytest

from repro.reporting.cli import main

from serveutil import BAD_MYSQL, CLEAN_MYSQL

GOLDEN_DIR = Path(__file__).parent / "golden"
UPDATE = os.environ.get("UPDATE_GOLDENS") == "1"

# Dict fields whose *keys* are data (diagnostic-kind histograms,
# metric-name-keyed telemetry families), not schema: recorded as a
# uniform key->type map instead of a fixed shape.
MAP_KEYS = {"by_kind", "counters", "gauges", "histograms",
            "warmup_by_system"}


def merge(a, b):
    """Union two schemas (``empty`` is the identity element)."""
    if a == b:
        return a
    if a == "empty":
        return b
    if b == "empty":
        return a
    if isinstance(a, dict) and isinstance(b, dict):
        ((tag_a, body_a),) = a.items()
        ((tag_b, body_b),) = b.items()
        if tag_a == tag_b == "object":
            keys = sorted(set(body_a) | set(body_b))
            return {
                "object": {
                    key: merge(
                        body_a.get(key, "absent"), body_b.get(key, "absent")
                    )
                    for key in keys
                }
            }
        if tag_a == tag_b:  # array | map
            return {tag_a: merge(body_a, body_b)}
    names = set()
    for schema in (a, b):
        if isinstance(schema, str):
            names.update(schema.split("|"))
        else:  # composite vs scalar: collapse to the composite's tag
            names.add(next(iter(schema)))
    return "|".join(sorted(names))


def schema_of(value, key=None):
    """Recursive shape of a decoded-JSON value."""
    if isinstance(value, bool):  # bool before int: bool is an int subtype
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if value is None:
        return "null"
    if isinstance(value, list):
        merged = "empty"
        for element in value:
            merged = merge(merged, schema_of(element))
        return {"array": merged}
    if isinstance(value, dict):
        if key in MAP_KEYS:
            merged = "empty"
            for element in value.values():
                merged = merge(merged, schema_of(element))
            return {"map": merged}
        return {
            "object": {
                k: schema_of(v, key=k) for k, v in sorted(value.items())
            }
        }
    raise TypeError(f"non-JSON value: {value!r}")


def assert_matches_golden(name: str, payload) -> None:
    schema = schema_of(payload)
    path = GOLDEN_DIR / f"{name}.json"
    if UPDATE:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(schema, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    assert path.exists(), (
        f"missing golden {path.name}; regenerate with UPDATE_GOLDENS=1"
    )
    golden = json.loads(path.read_text(encoding="utf-8"))
    assert schema == golden, (
        f"schema drift against {path.name}; if intentional, regenerate "
        "with UPDATE_GOLDENS=1 and review the diff"
    )


class TestSchemaExtractor:
    def test_scalars_and_bool_int_distinction(self):
        assert schema_of(True) == "bool"
        assert schema_of(3) == "int"
        assert schema_of(3.0) == "float"
        assert schema_of(None) == "null"

    def test_list_elements_union(self):
        assert schema_of([1, 2.5, None]) == {"array": "float|int|null"}
        assert schema_of([]) == {"array": "empty"}

    def test_object_union_marks_absent_keys(self):
        merged = schema_of([{"a": 1}, {"a": 2, "b": "x"}])
        assert merged == {
            "array": {"object": {"a": "int", "b": "absent|str"}}
        }

    def test_map_keys_are_data_not_schema(self):
        one = schema_of({"by_kind": {"range": 1}}, key=None)
        two = schema_of({"by_kind": {"unknown": 2, "basic": 1}}, key=None)
        assert one == two == {"object": {"by_kind": {"map": "int"}}}


class TestCliGoldenSchemas:
    def _json_out(self, capsys, argv, expect_code):
        code = main(argv)
        out = capsys.readouterr().out
        assert code == expect_code, out
        return json.loads(out)

    def test_check_json_schema(self, capsys, tmp_path):
        path = tmp_path / "bad.cnf"
        path.write_text(BAD_MYSQL)
        payload = self._json_out(
            capsys, ["check", "mysql", str(path), "--json"], expect_code=1
        )
        assert_matches_golden("check", payload)

    def test_check_access_control_json_schema(self, capsys, tmp_path):
        """Access-control diagnostics ride the same check surface: a
        directory the run-as identity cannot read (blameless message
        naming both candidate fixes) and a non-octal permission mode."""
        from repro.systems import get_system

        bad = (
            get_system("nginx")
            .default_config.replace(
                "root /data/nginx/static", "root /data/restricted_dir"
            )
            .replace("upload_store_mode 0755", "upload_store_mode 899")
        )
        path = tmp_path / "nginx.conf"
        path.write_text(bad)
        payload = self._json_out(
            capsys, ["check", "nginx", str(path), "--json"], expect_code=1
        )
        assert {d["kind"] for d in payload["diagnostics"]} == {
            "access_control"
        }
        assert {d["code"] for d in payload["diagnostics"]} == {
            "read-access-denied",
            "invalid-permission",
        }
        assert_matches_golden("check_access_control", payload)

    def test_pipeline_json_schema(self, capsys):
        payload = self._json_out(
            capsys,
            ["pipeline", "--systems", "vsftpd", "--json"],
            expect_code=0,
        )
        assert_matches_golden("pipeline", payload)

    def test_fleet_json_schema(self, capsys):
        payload = self._json_out(
            capsys,
            [
                "fleet", "--systems", "vsftpd",
                "--size", "30", "--sample", "3", "--json",
            ],
            expect_code=0,
        )
        assert_matches_golden("fleet", payload)

    def test_serve_status_json_schema(self, capsys):
        payload = self._json_out(
            capsys,
            ["serve", "--systems", "mysql", "--warmup-only", "--json"],
            expect_code=0,
        )
        assert_matches_golden("serve_status", payload)

    def test_submit_json_schema(self, server, capsys, tmp_path):
        """Second submission under one identity: the payload carries a
        populated history delta (removed findings), pages, the lot."""
        path = tmp_path / "iter.cnf"
        path.write_text(BAD_MYSQL)
        base = [
            "submit", "mysql", str(path),
            "--port", str(server.port),
            "--config-id", "golden-schema-demo",
            "--json",
        ]
        self._json_out(capsys, base, expect_code=1)
        path.write_text(CLEAN_MYSQL)
        payload = self._json_out(capsys, base, expect_code=0)
        assert payload["history"] is not None
        assert payload["trace"]["config_bytes"] > 0
        assert_matches_golden("submit", payload)

    def test_metrics_op_schema(self, server):
        """The metrics wire op: check once first so the latency
        histogram and request counter are populated, making the
        golden's shape independent of test ordering."""
        from repro.serve import ServeClient

        async def run():
            client = await ServeClient.connect("127.0.0.1", server.port)
            try:
                await client.check("mysql", BAD_MYSQL)
                return await client.metrics()
            finally:
                await client.close()

        response = asyncio.run(run())
        assert response.checks_served >= 1
        assert "serve.check_seconds" in response.histograms
        assert response.counters["serve.requests"] >= 1
        assert "mysql" in response.warmup_by_system
        assert_matches_golden("metrics", response.summary_dict())


class TestGoldenFilesAreCheckedIn:
    @pytest.mark.parametrize(
        "name",
        [
            "check",
            "check_access_control",
            "pipeline",
            "fleet",
            "metrics",
            "serve_status",
            "submit",
        ],
    )
    def test_golden_exists_and_is_canonical_json(self, name):
        path = GOLDEN_DIR / f"{name}.json"
        assert path.exists()
        text = path.read_text(encoding="utf-8")
        decoded = json.loads(text)
        assert text == json.dumps(decoded, indent=2, sort_keys=True) + "\n"
