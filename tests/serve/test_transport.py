"""The NDJSON wire protocol: happy paths, refusals, DoS guards, and
the serve/submit CLI commands end to end."""

import asyncio
import json

import pytest

from repro.reporting.cli import main
from repro.serve import BackgroundServer, MAX_CONFIG_BYTES, ServeClient, ServeError
from repro.serve.server import MAX_LINE_BYTES

from serveutil import BAD_MYSQL, run


async def _raw_call(server, payload: bytes) -> dict:
    """Send raw bytes (one line) and decode the one-line response."""
    reader, writer = await asyncio.open_connection(
        server.host, server.port, limit=MAX_LINE_BYTES
    )
    try:
        writer.write(payload)
        await writer.drain()
        line = await reader.readline()
        return json.loads(line.decode("utf-8"))
    finally:
        writer.close()


class TestProtocol:
    def test_ping(self, server):
        async def main_():
            async with await ServeClient.connect(
                server.host, server.port
            ) as client:
                return await client.ping()

        assert run(main_()) is True

    def test_malformed_json_line(self, server):
        envelope = run(_raw_call(server, b"this is not json\n"))
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "bad-request"

    def test_non_object_request(self, server):
        envelope = run(_raw_call(server, b"[1, 2, 3]\n"))
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "bad-request"

    def test_unknown_op(self, server):
        envelope = run(_raw_call(server, b'{"op": "frobnicate"}\n'))
        assert envelope["error"]["code"] == "bad-op"

    def test_page_without_cursor(self, server):
        envelope = run(_raw_call(server, b'{"op": "page"}\n'))
        assert envelope["error"]["code"] == "bad-request"

    def test_schema_version_in_every_envelope(self, server):
        envelope = run(_raw_call(server, b'{"op": "ping"}\n'))
        assert envelope["schema_version"] == 1
        envelope = run(_raw_call(server, b'{"op": "nope"}\n'))
        assert envelope["schema_version"] == 1

    def test_errors_propagate_as_typed_exceptions(self, server):
        async def main_():
            async with await ServeClient.connect(
                server.host, server.port
            ) as client:
                await client.history("mysql", "never-submitted-id")

        with pytest.raises(ServeError) as excinfo:
            run(main_())
        assert excinfo.value.code == "unknown-config"

    def test_unknown_system_over_wire(self, server):
        async def main_():
            async with await ServeClient.connect(
                server.host, server.port
            ) as client:
                await client.check("not-a-system", "")

        with pytest.raises(ServeError) as excinfo:
            run(main_())
        assert excinfo.value.code == "unknown-system"


class TestDosGuards:
    def test_oversized_config_rejected_over_wire(self, server):
        async def main_():
            async with await ServeClient.connect(
                server.host, server.port
            ) as client:
                await client.check(
                    "mysql", "x" * (MAX_CONFIG_BYTES + 1)
                )

        with pytest.raises(ServeError) as excinfo:
            run(main_())
        assert excinfo.value.code == "limit-exceeded"

    def test_oversized_line_refused_unparsed(self, server):
        line = b'{"padding": "' + b"x" * (MAX_LINE_BYTES + 1024) + b'"}\n'
        envelope = run(_raw_call(server, line))
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "limit-exceeded"

    def test_connection_survives_refused_requests(self, server):
        """A refusal answers the request; it does not poison the
        connection for the next one."""

        async def main_():
            async with await ServeClient.connect(
                server.host, server.port
            ) as client:
                with pytest.raises(ServeError):
                    await client.check("not-a-system", "")
                return await client.ping()

        assert run(main_()) is True


class TestShutdown:
    def test_shutdown_op_stops_the_server(self, warm_caches):
        handle = BackgroundServer(
            systems=["mysql"], caches=warm_caches
        ).start()
        port = handle.port

        async def main_():
            client = await ServeClient.connect(handle.host, port)
            await client.shutdown()
            await client.close()

        run(main_())
        handle.stop()  # joins the loop thread

        async def reconnect():
            await asyncio.open_connection(handle.host, port)

        with pytest.raises(OSError):
            run(reconnect())


class TestSubmitCli:
    def test_flagged_submission_exits_one(self, server, capsys, tmp_path):
        path = tmp_path / "bad.cnf"
        path.write_text(BAD_MYSQL)
        code = main(
            ["submit", "mysql", str(path), "--port", str(server.port)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "fix:" in out and "evidence:" in out

    def test_clean_submission_exits_zero(self, server, capsys, tmp_path):
        path = tmp_path / "ok.cnf"
        path.write_text("ft_min_word_len = 5\n")
        code = main(
            ["submit", "mysql", str(path), "--port", str(server.port)]
        )
        assert code == 0
        assert "no problems found" in capsys.readouterr().out

    def test_missing_file_exits_two(self, server, capsys, tmp_path):
        code = main(
            [
                "submit",
                "mysql",
                str(tmp_path / "absent.cnf"),
                "--port",
                str(server.port),
            ]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unreachable_service_exits_two(self, capsys, tmp_path):
        path = tmp_path / "x.cnf"
        path.write_text("")
        code = main(["submit", "mysql", str(path), "--port", "1"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().err

    def test_unknown_system_exits_two(self, server, capsys, tmp_path):
        path = tmp_path / "x.cnf"
        path.write_text("")
        code = main(
            ["submit", "nope", str(path), "--port", str(server.port)]
        )
        assert code == 2
        assert "refused" in capsys.readouterr().err

    def test_history_shown_on_resubmission(self, server, capsys, tmp_path):
        path = tmp_path / "iter.cnf"
        path.write_text(BAD_MYSQL)
        config_id = "cli-history-demo"
        main(
            [
                "submit", "mysql", str(path),
                "--port", str(server.port),
                "--config-id", config_id,
            ]
        )
        capsys.readouterr()
        path.write_text("ft_min_word_len = 5\n")
        code = main(
            [
                "submit", "mysql", str(path),
                "--port", str(server.port),
                "--config-id", config_id,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "since revision 1" in out
        assert "resolved" in out

    def test_severity_filter_flag(self, server, capsys, tmp_path):
        path = tmp_path / "warn.cnf"
        path.write_text(BAD_MYSQL)
        code = main(
            [
                "submit", "mysql", str(path),
                "--port", str(server.port),
                "--severity", "warning",
                "--json",
            ]
        )
        decoded = json.loads(capsys.readouterr().out)
        assert code == 1  # flagged status is filter-independent
        assert all(
            d["severity"] == "warning" for d in decoded["diagnostics"]
        )
        assert decoded["errors"] > 0


class TestServeCli:
    def test_warmup_only_json(self, capsys):
        code = main(
            ["serve", "--systems", "mysql", "--warmup-only", "--json"]
        )
        decoded = json.loads(capsys.readouterr().out)
        assert code == 0
        assert decoded["systems"] == ["mysql"]
        assert decoded["schema_version"] == 1
        assert decoded["checks_served"] == 0

    def test_warmup_only_text(self, capsys):
        code = main(["serve", "--systems", "mysql", "--warmup-only"])
        out = capsys.readouterr().out
        assert code == 0
        assert "warmed 1 checker(s)" in out

    def test_unknown_system_exits_two(self, capsys):
        code = main(["serve", "--systems", "bogus", "--warmup-only"])
        assert code == 2
        assert "unknown system" in capsys.readouterr().err
