"""Helpers shared across the serve test tier (non-fixture side).

Lives outside conftest.py so test modules can import it by name under
rootless pytest imports (`from serveutil import ...`), mirroring the
basename-uniqueness convention noted in CHANGES.md.
"""

from __future__ import annotations

import asyncio
import re

from repro.checker import checker_for_system, validate_config
from repro.pipeline.cache import PipelineCaches
from repro.systems.registry import get_system

BAD_MYSQL = "ft_min_word_len = 99\nmade_up_param = 1\n"
CLEAN_MYSQL = "ft_min_word_len = 5\n"


def run(coro):
    """Drive one test coroutine on a fresh event loop (the suite does
    not depend on pytest-asyncio)."""
    return asyncio.run(coro)


def probe_configs(system) -> list[str]:
    """Deterministic per-system probe set: the pristine template, a
    typo'd template, an empty config, and a numerically mangled
    template that should trip range/relationship constraints."""
    template = system.default_config
    mangled = re.sub(r"\d+", "99999999", template, count=3)
    return [
        template,
        template + "\ndefinitely_unknown_param = 1\n",
        "",
        mangled,
    ]


def cold_reference(system_name: str, config_text: str):
    """The cold `check` CLI path, minus the process boot: fresh
    caches, fresh inference-and-compile, one validation."""
    caches = PipelineCaches()
    checker = checker_for_system(get_system(system_name), caches=caches)
    return validate_config(checker, config_text)
