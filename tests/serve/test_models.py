"""Request validation, filter/page limits, cursors, schema guards."""

import pytest

from repro.serve import (
    CheckRequest,
    CheckResponse,
    DiagnosticPage,
    FleetStatus,
    HistoryDelta,
    MAX_CONFIG_BYTES,
    MAX_FILTER_KINDS,
    MAX_PAGE_SIZE,
    SCHEMA_VERSION,
    ServeError,
)
from repro.serve.models import decode_cursor, encode_cursor


def _code(callable_, *args, **kwargs) -> str:
    with pytest.raises(ServeError) as excinfo:
        callable_(*args, **kwargs)
    return excinfo.value.code


class TestCheckRequestValidation:
    def test_minimal_request_is_valid(self):
        CheckRequest(system="mysql", config_text="port = 1\n").validate()

    def test_full_request_is_valid(self):
        CheckRequest(
            system="mysql",
            config_text="port = 1\n",
            config_id="prod/my.cnf",
            page_size=MAX_PAGE_SIZE,
            severity="error",
            kinds=("range", "unknown"),
        ).validate()

    def test_missing_system_rejected(self):
        request = CheckRequest(system="", config_text="x = 1\n")
        assert _code(request.validate) == "bad-request"

    def test_page_size_over_limit_rejected(self):
        request = CheckRequest(
            system="mysql", config_text="", page_size=MAX_PAGE_SIZE + 1
        )
        assert _code(request.validate) == "limit-exceeded"

    def test_page_size_zero_rejected(self):
        request = CheckRequest(system="mysql", config_text="", page_size=0)
        assert _code(request.validate) == "bad-request"

    def test_bad_severity_rejected(self):
        request = CheckRequest(
            system="mysql", config_text="", severity="critical"
        )
        assert _code(request.validate) == "bad-request"

    def test_too_many_kind_filters_rejected(self):
        request = CheckRequest(
            system="mysql",
            config_text="",
            kinds=tuple(f"basic" for _ in range(MAX_FILTER_KINDS + 1)),
        )
        assert _code(request.validate) == "limit-exceeded"

    def test_unknown_kind_rejected(self):
        request = CheckRequest(
            system="mysql", config_text="", kinds=("no-such-kind",)
        )
        assert _code(request.validate) == "bad-request"

    def test_oversized_config_rejected(self):
        request = CheckRequest(
            system="mysql", config_text="x" * (MAX_CONFIG_BYTES + 1)
        )
        assert _code(request.validate) == "limit-exceeded"


class TestCursors:
    def test_round_trip(self):
        cursor = encode_cursor("abc123", 40, "error", ("range", "basic"))
        assert decode_cursor(cursor) == (
            "abc123",
            40,
            "error",
            ("range", "basic"),
        )

    def test_garbage_rejected(self):
        assert _code(decode_cursor, "not-a-cursor!!") == "bad-cursor"

    def test_wrong_payload_rejected(self):
        import base64

        cursor = base64.urlsafe_b64encode(b'{"x": 1}').decode()
        assert _code(decode_cursor, cursor) == "bad-cursor"

    def test_cursor_filter_is_validated(self):
        # A forged cursor cannot smuggle a filter past the limits.
        import base64
        import json

        payload = json.dumps(
            {"r": "abc", "o": 0, "s": "critical", "k": []}
        ).encode()
        cursor = base64.urlsafe_b64encode(payload).decode()
        assert _code(decode_cursor, cursor) == "bad-request"


class TestSchemaRoundTrips:
    def test_check_response_schema_mismatch_rejected(self):
        page = DiagnosticPage(
            items=(), cursor=None, total=0, matched=0, offset=0
        )
        data = CheckResponse(
            schema_version=SCHEMA_VERSION,
            system="mysql",
            config_id=None,
            revision=1,
            result_id="r1",
            flagged=False,
            errors=0,
            warnings=0,
            parameters_present=0,
            parameters_checked=0,
            page=page,
        ).summary_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        assert _code(CheckResponse.from_dict, data) == "schema-mismatch"

    def test_check_response_round_trip(self):
        page = DiagnosticPage(
            items=({"param": "p", "kind": "range", "severity": "error"},),
            cursor="next",
            total=3,
            matched=1,
            offset=0,
        )
        history = HistoryDelta(
            revision=2,
            previous_revision=1,
            added=(),
            removed=({"param": "q"},),
            unchanged=1,
        )
        response = CheckResponse(
            schema_version=SCHEMA_VERSION,
            system="mysql",
            config_id="id",
            revision=2,
            result_id="r2",
            flagged=True,
            errors=1,
            warnings=0,
            parameters_present=2,
            parameters_checked=2,
            page=page,
            history=history,
        )
        assert (
            CheckResponse.from_dict(response.summary_dict()) == response
        )

    def test_fleet_status_round_trip(self):
        status = FleetStatus(
            schema_version=SCHEMA_VERSION,
            systems=("mysql", "squid"),
            checks_served=7,
            configs_tracked=2,
            results_retained=5,
            uptime_seconds=1.25,
            warmup_seconds=0.5,
            workers=4,
            cache_stats={"checkers": {"hits": 1}},
        )
        assert FleetStatus.from_dict(status.summary_dict()) == status
