"""Cursor pagination and server-side filtering.

The invariants under test: pages concatenate to exactly the serial
diagnostic list, the filter travels inside the cursor, limits are
enforced server-side, and an open cursor is immune to interleaved
submissions (snapshots are immutable).
"""

import pytest

from repro.serve import MAX_PAGE_SIZE, ServeError

from serveutil import BAD_MYSQL, cold_reference, run

# A config tripping many diagnostics: several bad values + unknowns.
NOISY_MYSQL = (
    "ft_min_word_len = 99\n"
    "port = 70000\n"
    "made_up_param_one = 1\n"
    "made_up_param_two = 2\n"
)


def _walk(service, response):
    """Collect every page item by following cursors."""
    items = list(response.page.items)
    cursor = response.page.cursor
    while cursor is not None:
        page = service.page(cursor)
        items.extend(page.items)
        cursor = page.cursor
    return items


class TestPagination:
    def test_page_size_respected_and_walk_is_complete(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                response = await service.check_config(
                    "mysql", NOISY_MYSQL, page_size=2
                )
                return response, _walk(service, response)
            finally:
                await service.close()

        response, items = run(main())
        reference = [
            d.summary_dict()
            for d in cold_reference("mysql", NOISY_MYSQL).diagnostics
        ]
        assert len(response.page.items) == 2
        assert response.page.total == len(reference)
        assert response.page.matched == len(reference)
        assert items == reference

    def test_terminal_page_has_no_cursor(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                return await service.check_config(
                    "mysql", NOISY_MYSQL, page_size=MAX_PAGE_SIZE
                )
            finally:
                await service.close()

        response = run(main())
        assert response.page.cursor is None
        assert len(response.page.items) == response.page.matched

    def test_offsets_advance(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                response = await service.check_config(
                    "mysql", NOISY_MYSQL, page_size=2
                )
                second = service.page(response.page.cursor)
                return response.page, second
            finally:
                await service.close()

        first, second = run(main())
        assert first.offset == 0
        assert second.offset == 2

    def test_page_limit_enforced_on_page_calls(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                response = await service.check_config(
                    "mysql", NOISY_MYSQL, page_size=1
                )
                with pytest.raises(ServeError) as excinfo:
                    service.page(
                        response.page.cursor, limit=MAX_PAGE_SIZE + 1
                    )
                return excinfo.value.code
            finally:
                await service.close()

        assert run(main()) == "limit-exceeded"


class TestFiltering:
    def test_severity_filter(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                response = await service.check_config(
                    "mysql", NOISY_MYSQL, severity="error", page_size=100
                )
                return response
            finally:
                await service.close()

        response = run(main())
        assert response.page.matched == response.errors
        assert all(
            item["severity"] == "error" for item in response.page.items
        )
        # Counts still describe the whole result, not the filtered view.
        assert response.page.total == response.errors + response.warnings

    def test_kind_filter(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                return await service.check_config(
                    "mysql", NOISY_MYSQL, kinds=("unknown",), page_size=100
                )
            finally:
                await service.close()

        response = run(main())
        assert response.page.matched == 2
        assert all(
            item["kind"] == "unknown" for item in response.page.items
        )

    def test_filter_travels_in_cursor(self, make_service):
        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                response = await service.check_config(
                    "mysql", NOISY_MYSQL, severity="error", page_size=1
                )
                items = _walk(service, response)
                return response, items
            finally:
                await service.close()

        response, items = run(main())
        assert len(items) == response.errors
        assert all(item["severity"] == "error" for item in items)


class TestCursorStability:
    def test_open_cursor_survives_interleaved_submissions(
        self, make_service
    ):
        """A paginated walk started before N other submissions must
        return exactly what an uninterrupted walk returns."""

        async def main():
            service = make_service(systems=["mysql"])
            await service.start()
            try:
                baseline = await service.check_config(
                    "mysql", NOISY_MYSQL, page_size=100
                )
                uninterrupted = list(baseline.page.items)

                walked = await service.check_config(
                    "mysql", NOISY_MYSQL + "# v2\n", page_size=1
                )
                items = list(walked.page.items)
                cursor = walked.page.cursor
                step = 0
                while cursor is not None:
                    # Interleave a different submission per page step.
                    await service.check_config(
                        "mysql",
                        BAD_MYSQL + f"interleaved_{step} = 1\n",
                        config_id=f"other-{step}",
                    )
                    page = service.page(cursor)
                    items.extend(page.items)
                    cursor = page.cursor
                    step += 1
                return uninterrupted, items
            finally:
                await service.close()

        uninterrupted, items = run(main())
        # "# v2" only shifts nothing: the diagnostics are identical.
        assert items == uninterrupted
        assert len(items) > 2  # the walk really was multi-page
