"""`ServeClient` timeout behaviour: a stalled server (or an
unreachable one) surfaces as a typed `ServeError("deadline")`, never
as an indefinite hang or a bare `asyncio.TimeoutError`."""

import asyncio

import pytest
from serveutil import run

from repro.serve import ServeClient, ServeError
from repro.serve.client import submit_config


async def _silent_server():
    """A listener that reads requests and never answers."""

    async def handler(reader, writer):
        try:
            while await reader.readline():
                pass  # swallow every request, reply to none
        except ConnectionResetError:
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
    return server, server.sockets[0].getsockname()[1]


class TestReadTimeout:
    def test_stalled_server_maps_to_typed_deadline(self):
        async def scenario():
            server, port = await _silent_server()
            try:
                client = await ServeClient.connect(
                    "127.0.0.1", port, read_timeout=0.1
                )
                try:
                    with pytest.raises(ServeError) as excinfo:
                        await client.ping()
                    return excinfo.value
                finally:
                    await client.close()
            finally:
                server.close()
                await server.wait_closed()

        error = run(scenario())
        assert error.code == "deadline"
        assert "read" in error.message and "timeout" in error.message

    def test_no_timeout_by_default(self):
        client = ServeClient(reader=None, writer=None)
        assert client.read_timeout is None


class TestConnectTimeout:
    def test_hung_connect_maps_to_typed_deadline(self, monkeypatch):
        # A black-holed address never completes the TCP handshake;
        # simulate that deterministically instead of depending on the
        # host's routing table.
        async def never_connects(*args, **kwargs):
            await asyncio.sleep(3600)

        monkeypatch.setattr(asyncio, "open_connection", never_connects)

        async def scenario():
            with pytest.raises(ServeError) as excinfo:
                await ServeClient.connect(
                    "203.0.113.1", 9, connect_timeout=0.05
                )
            return excinfo.value

        error = run(scenario())
        assert error.code == "deadline"
        assert "connect timeout" in error.message

    def test_submit_config_passes_timeouts_through(self, monkeypatch):
        # The sync one-shot must honour the same knobs: a dead server
        # becomes a typed error, not a hang.
        async def never_connects(*args, **kwargs):
            await asyncio.sleep(3600)

        monkeypatch.setattr(asyncio, "open_connection", never_connects)
        with pytest.raises(ServeError) as excinfo:
            submit_config(
                "203.0.113.1",
                9,
                "mysql",
                "port = 1\n",
                connect_timeout=0.05,
            )
        assert excinfo.value.code == "deadline"
