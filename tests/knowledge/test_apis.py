"""Unit tests for the API knowledge base and unit model."""

import pytest

from repro.knowledge import ApiSpec, ArgFact, SemanticType, Unit, default_knowledge
from repro.knowledge.semantic import scale_between


class TestDefaultKnowledge:
    def test_file_apis(self):
        kb = default_knowledge()
        assert kb.get("open").arg_fact(0).semantic is SemanticType.FILE
        assert kb.get("fopen").arg_fact(0).semantic is SemanticType.FILE

    def test_port_apis(self):
        kb = default_knowledge()
        assert kb.get("bind").arg_fact(1).semantic is SemanticType.PORT
        assert kb.get("htons").arg_fact(0).semantic is SemanticType.PORT

    def test_time_units(self):
        kb = default_knowledge()
        assert kb.get("sleep").arg_fact(0).unit is Unit.SECONDS
        assert kb.get("usleep").arg_fact(0).unit is Unit.MICROSECONDS

    def test_comparison_sensitivity(self):
        kb = default_knowledge()
        assert kb.get("strcmp").case_sensitive is True
        assert kb.get("strcasecmp").case_sensitive is False

    def test_unsafe_vs_safe_transforms(self):
        kb = default_knowledge()
        unsafe = set(kb.unsafe_transforms())
        assert {"atoi", "atol", "atof", "sscanf", "sprintf"} <= unsafe
        assert "strtol" not in unsafe
        assert kb.get("strtol").safe_transform

    def test_exit_apis(self):
        kb = default_knowledge()
        assert kb.get("exit").exits_process
        assert kb.get("abort").exits_process

    def test_sscanf_out_args(self):
        assert default_knowledge().get("sscanf").out_args_from == 2


class TestExtension:
    def test_extend_is_nonmutating(self):
        base = default_knowledge()
        extended = base.extend(
            [ApiSpec("wafl_reserve", args=[ArgFact(0, SemanticType.SIZE, Unit.BYTES)])]
        )
        assert "wafl_reserve" in extended
        assert base.get("wafl_reserve") is None

    def test_extend_overrides(self):
        base = default_knowledge()
        extended = base.extend([ApiSpec("atoi", unsafe_transform=False)])
        assert not extended.get("atoi").unsafe_transform
        assert base.get("atoi").unsafe_transform


class TestUnits:
    def test_dimensions(self):
        assert Unit.KILOBYTES.dimension == "size"
        assert Unit.MILLISECONDS.dimension == "time"

    def test_scale_between(self):
        assert scale_between(Unit.KILOBYTES, Unit.BYTES) == 1024
        assert scale_between(Unit.HOURS, Unit.SECONDS) == 3600
        assert scale_between(Unit.MICROSECONDS, Unit.MILLISECONDS) == pytest.approx(1e-3)

    def test_incompatible_dimensions_raise(self):
        with pytest.raises(ValueError):
            scale_between(Unit.BYTES, Unit.SECONDS)
