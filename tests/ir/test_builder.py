"""Unit tests for AST -> IR lowering."""

from repro.ir import build_ir
from repro.ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Cast,
    Jump,
    LoadField,
    Ret,
    StoreField,
    SwitchInst,
)
from repro.ir.values import Const, Temp, Variable
from repro.lang.program import Program


def build(source):
    return build_ir(Program.from_sources({"t.c": source}))


def insts_of(module, fn_name, kind=None):
    out = list(module.function(fn_name).instructions())
    if kind is not None:
        out = [i for i in out if isinstance(i, kind)]
    return out


class TestBasicLowering:
    def test_simple_function_has_entry_and_ret(self):
        module = build("int f() { return 1; }")
        fn = module.function("f")
        assert fn.entry_label in fn.blocks
        rets = insts_of(module, "f", Ret)
        assert len(rets) == 1
        assert isinstance(rets[0].value, Const)

    def test_params_are_variables(self):
        module = build("int f(int a, char *b) { return a; }")
        fn = module.function("f")
        assert [p.name for p in fn.params] == ["a", "b"]
        assert fn.params[0].kind == "param"
        assert fn.params[0].param_index == 0

    def test_assignment_emits_store(self):
        module = build("int g; int f() { g = 5; return g; }")
        stores = [
            i
            for i in insts_of(module, "f", Assign)
            if isinstance(i.dest, Variable) and i.dest.name == "g"
        ]
        assert len(stores) == 1
        assert isinstance(stores[0].src, Const)

    def test_cast_preserved(self):
        module = build("int f(char *s) { return (int)strtol(s, NULL, 10); }")
        casts = insts_of(module, "f", Cast)
        assert len(casts) == 1
        assert str(casts[0].type) == "int"

    def test_call_lowered_with_args(self):
        module = build('int f() { return open("/etc/x", 0); }')
        calls = insts_of(module, "f", Call)
        assert calls[0].callee == "open"
        assert calls[0].args[0] == Const("/etc/x")

    def test_indirect_call_lowered(self):
        module = build(
            """
            struct cmd { char *name; void *fn; };
            struct cmd table[2];
            int f(int i) { return table[i].fn(1); }
            """
        )
        indirect = insts_of(module, "f", CallIndirect)
        assert len(indirect) == 1


class TestFieldPaths:
    def test_store_field_path_rooted_at_global(self):
        module = build(
            """
            struct conf { int timeout; };
            struct conf cfg;
            int f() { cfg.timeout = 30; return 0; }
            """
        )
        stores = insts_of(module, "f", StoreField)
        assert len(stores) == 1
        assert isinstance(stores[0].base, Variable)
        assert stores[0].base.name == "cfg"
        assert stores[0].path == ("timeout",)

    def test_nested_field_path(self):
        module = build(
            """
            struct inner { int x; };
            struct outer { struct inner in; };
            struct outer cfg;
            int f() { return cfg.in.x; }
            """
        )
        loads = insts_of(module, "f", LoadField)
        assert loads[0].path == ("in", "x")

    def test_arrow_on_param_keeps_variable_root(self):
        # The OpenLDAP config_generic(ConfigArgs *c) pattern.
        module = build(
            """
            struct args { int value_int; };
            int f(struct args *c) { return c->value_int; }
            """
        )
        loads = insts_of(module, "f", LoadField)
        assert isinstance(loads[0].base, Variable)
        assert loads[0].base.kind == "param"
        assert loads[0].path == ("value_int",)


class TestControlFlowLowering:
    def test_if_creates_branch_with_compare_info(self):
        module = build("int f(int v) { if (v < 4) { return 1; } return 0; }")
        branches = insts_of(module, "f", Branch)
        assert len(branches) == 1
        info = branches[0].cond_info
        assert info is not None
        assert info.op == "<"
        assert info.right == Const(4)

    def test_plain_condition_gets_nonzero_compare(self):
        module = build("int f(int v) { if (v) { return 1; } return 0; }")
        info = insts_of(module, "f", Branch)[0].cond_info
        assert info.op == "!="
        assert info.right == Const(0)

    def test_logical_and_creates_two_branches(self):
        module = build(
            "int f(int a, int b) { if (a > 1 && b < 9) { return 1; } return 0; }"
        )
        branches = insts_of(module, "f", Branch)
        assert len(branches) == 2
        ops = {b.cond_info.op for b in branches}
        assert ops == {">", "<"}

    def test_while_loop_structure(self):
        module = build("int f() { int i = 0; while (i < 3) { i = i + 1; } return i; }")
        fn = module.function("f")
        labels = set(fn.blocks)
        assert any(lbl.startswith("while.cond") for lbl in labels)
        assert any(lbl.startswith("while.body") for lbl in labels)

    def test_switch_lowering(self):
        module = build(
            """
            int f(int v) {
                switch (v) {
                    case 1: return 10;
                    case 2: return 20;
                    default: return 0;
                }
            }
            """
        )
        switches = insts_of(module, "f", SwitchInst)
        assert len(switches) == 1
        assert len(switches[0].cases) == 2
        assert switches[0].default_label is not None

    def test_ternary_becomes_branches(self):
        module = build("int f(int v) { return v > 64 ? 64 : v; }")
        branches = insts_of(module, "f", Branch)
        assert len(branches) == 1
        assert branches[0].cond_info.op == ">"

    def test_unreachable_code_after_return_is_dead_block(self):
        module = build("int f() { return 1; exit(0); }")
        from repro.ir.cfg import reachable_blocks

        fn = module.function("f")
        reachable = set(reachable_blocks(fn))
        dead = [lbl for lbl in fn.blocks if lbl not in reachable]
        assert dead  # the exit(0) landed in an unreachable block


class TestModuleLevel:
    def test_globals_registered(self):
        module = build("int a = 1; char *b;")
        assert "a" in module.globals
        assert module.globals["a"].kind == "global"
        assert "a" in module.global_inits

    def test_prototypes_not_lowered(self):
        module = build("extern int open(char *p, int f); int main() { return 0; }")
        assert not module.has_function("open")
        assert module.has_function("main")

    def test_printer_roundtrip_smoke(self):
        from repro.ir.printer import format_module

        module = build("int f(int v) { if (v > 2) { return v; } return 0; }")
        text = format_module(module)
        assert "@f" in text
        assert "br" in text
