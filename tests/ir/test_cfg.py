"""Unit tests for dominators, postdominators, control dependence."""

from repro.ir import build_ir
from repro.ir.cfg import (
    CfgInfo,
    compute_control_dependence,
    compute_dominators,
    compute_postdominators,
    immediate_dominators,
    reachable_blocks,
)
from repro.ir.instructions import Branch
from repro.lang.program import Program


def build_fn(source, name="f"):
    module = build_ir(Program.from_sources({"t.c": source}))
    return module.function(name)


def branch_blocks(fn):
    return [
        block.label
        for block in fn.block_order()
        if isinstance(block.terminator, Branch)
    ]


class TestDominators:
    def test_entry_dominates_all(self):
        fn = build_fn("int f(int v) { if (v) { v = 1; } return v; }")
        dom = compute_dominators(fn)
        for label in reachable_blocks(fn):
            assert fn.entry_label in dom[label]

    def test_then_block_dominated_by_branch(self):
        fn = build_fn("int f(int v) { if (v > 2) { v = 9; } return v; }")
        dom = compute_dominators(fn)
        then_label = next(lbl for lbl in fn.blocks if lbl.startswith("if.then"))
        assert fn.entry_label in dom[then_label]

    def test_immediate_dominator_of_entry_is_none(self):
        fn = build_fn("int f() { return 0; }")
        idom = immediate_dominators(fn)
        assert idom[fn.entry_label] is None

    def test_idom_chain(self):
        fn = build_fn(
            "int f(int v) { if (v) { if (v > 2) { v = 1; } } return v; }"
        )
        idom = immediate_dominators(fn)
        inner_then = [lbl for lbl in fn.blocks if lbl.startswith("if.then")]
        # Every reachable then-block has an immediate dominator.
        reachable = set(reachable_blocks(fn))
        for lbl in inner_then:
            if lbl in reachable:
                assert idom[lbl] is not None


class TestPostdominators:
    def test_merge_block_postdominates_branch(self):
        fn = build_fn("int f(int v) { if (v) { v = 1; } return v; }")
        pdom = compute_postdominators(fn)
        merge = next(lbl for lbl in fn.blocks if lbl.startswith("if.end"))
        assert merge in pdom[fn.entry_label]

    def test_then_block_does_not_postdominate_entry(self):
        fn = build_fn("int f(int v) { if (v) { v = 1; } return v; }")
        pdom = compute_postdominators(fn)
        then_label = next(lbl for lbl in fn.blocks if lbl.startswith("if.then"))
        assert then_label not in pdom[fn.entry_label]


class TestControlDependence:
    def test_then_block_control_dependent_on_branch(self):
        fn = build_fn("int f(int v) { if (v > 4) { v = 0; } return v; }")
        cdeps = compute_control_dependence(fn)
        then_label = next(lbl for lbl in fn.blocks if lbl.startswith("if.then"))
        branch = branch_blocks(fn)[0]
        deps = cdeps[then_label]
        assert any(d.branch_block == branch for d in deps)

    def test_else_and_then_depend_on_opposite_edges(self):
        fn = build_fn(
            "int f(int v) { if (v > 4) { v = 1; } else { v = 2; } return v; }"
        )
        info = CfgInfo.for_function(fn)
        branch = branch_blocks(fn)[0]
        term = fn.blocks[branch].terminator
        then_set = info.controlled_by(branch, term.true_label)
        else_set = info.controlled_by(branch, term.false_label)
        assert then_set and else_set
        assert not (then_set & else_set)

    def test_merge_block_not_control_dependent(self):
        fn = build_fn("int f(int v) { if (v > 4) { v = 0; } return v; }")
        cdeps = compute_control_dependence(fn)
        merge = next(lbl for lbl in fn.blocks if lbl.startswith("if.end"))
        branch = branch_blocks(fn)[0]
        assert all(d.branch_block != branch for d in cdeps.get(merge, set()))

    def test_nested_dependence(self):
        fn = build_fn(
            """
            int f(int a, int b) {
                if (a) {
                    if (b) { return 1; }
                }
                return 0;
            }
            """
        )
        info = CfgInfo.for_function(fn)
        branches = branch_blocks(fn)
        assert len(branches) == 2
        inner_branch = branches[1]
        # The inner branch block itself depends on the outer branch.
        outer_deps = info.controlling_branches(inner_branch)
        assert any(d.branch_block == branches[0] for d in outer_deps)

    def test_loop_body_control_dependent_on_header(self):
        fn = build_fn("int f(int n) { int i = 0; while (i < n) { i++; } return i; }")
        info = CfgInfo.for_function(fn)
        body = next(lbl for lbl in fn.blocks if lbl.startswith("while.body"))
        header_branch = branch_blocks(fn)[0]
        assert any(
            d.branch_block == header_branch
            for d in info.controlling_branches(body)
        )


class TestCallGraph:
    def test_direct_calls_recorded(self):
        from repro.ir.callgraph import CallGraph

        module = build_ir(
            Program.from_sources(
                {
                    "t.c": """
                    int helper(int x) { return x; }
                    int mid(int x) { return helper(x); }
                    int main() { return mid(1); }
                    """
                }
            )
        )
        graph = CallGraph.build(module)
        assert "mid" in graph.calls_from("main")
        assert "helper" in graph.calls_from("mid")
        assert graph.is_reachable("main", "helper")
        assert not graph.is_reachable("helper", "main")

    def test_call_sites_located(self):
        from repro.ir.callgraph import CallGraph

        module = build_ir(
            Program.from_sources(
                {"t.c": "int main() { sleep(1); sleep(2); return 0; }"}
            )
        )
        graph = CallGraph.build(module)
        assert len(graph.call_sites_of("sleep")) == 2
