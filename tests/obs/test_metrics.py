"""Unit tests for the metrics registry and its delta protocol.

The registry's contract mirrors `CacheStats`: plain-dict snapshots,
element-wise deltas, absorb-to-fold.  These tests pin bucketing
semantics, deep-copy snapshots, the kill switch (gauges exempt), and
the bucket-edge identity check that keeps histogram merges sound.
"""

import pytest

from repro.obs import (
    MetricsRegistry,
    enabled,
    get_registry,
    metrics_delta,
    set_enabled,
)


class TestCounters:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter_value("a") == 5

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("nope") == 0


class TestGauges:
    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.gauge("g", 1.5)
        registry.gauge("g", 2.5)
        assert registry.gauge_value("g") == 2.5

    def test_missing_gauge_reads_default(self):
        assert MetricsRegistry().gauge_value("nope", default=7) == 7


class TestHistograms:
    def test_bucketing_is_le_semantics(self):
        """A value equal to an edge lands in that edge's bucket;
        anything above the last edge lands in the overflow slot."""
        registry = MetricsRegistry()
        for value in (0.5, 1.0, 3.0, 7.0):
            registry.observe("h", value, buckets=(1.0, 5.0))
        hist = registry.snapshot()["histograms"]["h"]
        assert hist["buckets"] == [1.0, 5.0]
        assert hist["counts"] == [2, 1, 1]  # <=1, <=5, overflow
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(11.5)

    def test_first_observe_fixes_the_edges(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0, buckets=(1.0, 5.0))
        # Later observes reuse the recorded edges; the buckets argument
        # of subsequent calls does not re-shape the histogram.
        registry.observe("h", 100.0, buckets=(2.0,))
        hist = registry.snapshot()["histograms"]["h"]
        assert hist["buckets"] == [1.0, 5.0]
        assert hist["counts"] == [1, 0, 1]


class TestSnapshot:
    def test_snapshot_is_a_deep_copy(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 0.5, buckets=(1.0,))
        snap = registry.snapshot()
        snap["counters"]["c"] = 99
        snap["histograms"]["h"]["counts"][0] = 99
        assert registry.counter_value("c") == 1
        assert registry.snapshot()["histograms"]["h"]["counts"] == [1, 0]

    def test_snapshot_shape(self):
        assert set(MetricsRegistry().snapshot()) == {
            "counters",
            "gauges",
            "histograms",
        }


class TestDeltaAndAbsorb:
    def test_roundtrip_folds_exactly(self):
        """The worker protocol: snapshot, work, delta, parent absorb."""
        worker = MetricsRegistry()
        worker.inc("c", 2)
        worker.observe("h", 0.5, buckets=(1.0,))
        before = worker.snapshot()
        worker.inc("c", 3)
        worker.observe("h", 2.0, buckets=(1.0,))
        delta = metrics_delta(before, worker.snapshot())

        parent = MetricsRegistry()
        parent.inc("c", 10)
        parent.absorb(delta)
        assert parent.counter_value("c") == 13
        hist = parent.snapshot()["histograms"]["h"]
        assert hist["counts"] == [0, 1]
        assert hist["count"] == 1

    def test_delta_never_carries_gauges(self):
        """Forked workers inherit parent gauges; shipping them back
        would overwrite fresher parent state with stale copies."""
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.gauge("g", 42)
        registry.inc("c")
        delta = metrics_delta(before, registry.snapshot())
        assert delta["gauges"] == {}
        assert delta["counters"] == {"c": 1}

    def test_new_histogram_passes_whole(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.observe("h", 0.5, buckets=(1.0,))
        delta = metrics_delta(before, registry.snapshot())
        assert delta["histograms"]["h"]["count"] == 1

    def test_absorb_refuses_mismatched_edges(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.5, buckets=(1.0,))
        bad = {
            "histograms": {
                "h": {
                    "buckets": [2.0],
                    "counts": [1, 0],
                    "count": 1,
                    "sum": 0.5,
                }
            }
        }
        with pytest.raises(ValueError, match="bucket edges"):
            registry.absorb(bad)

    def test_delta_refuses_mismatched_edges(self):
        before = {
            "histograms": {
                "h": {"buckets": [1.0], "counts": [0, 0],
                      "count": 0, "sum": 0.0}
            }
        }
        after = {
            "histograms": {
                "h": {"buckets": [2.0], "counts": [1, 0],
                      "count": 1, "sum": 0.5}
            }
        }
        with pytest.raises(ValueError, match="bucket edges"):
            metrics_delta(before, after)

    def test_clear_empties_every_family(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.gauge("g", 1)
        registry.observe("h", 0.5)
        registry.clear()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestKillSwitch:
    def test_disabled_drops_counters_and_histograms_not_gauges(self):
        registry = MetricsRegistry()
        previous = set_enabled(False)
        try:
            assert not enabled()
            registry.inc("c")
            registry.observe("h", 0.5)
            registry.gauge("g", 3)  # gauges carry reporting state
        finally:
            set_enabled(previous)
        assert registry.counter_value("c") == 0
        assert registry.snapshot()["histograms"] == {}
        assert registry.gauge_value("g") == 3

    def test_set_enabled_returns_previous(self):
        previous = set_enabled(False)
        try:
            assert previous is True
            assert set_enabled(True) is False
        finally:
            set_enabled(True)


class TestProcessRegistry:
    def test_get_registry_is_a_singleton(self):
        assert get_registry() is get_registry()
