"""Launch-profiler tests: sampling cadence and recorded metric names."""

from repro.obs import (
    LaunchProfiler,
    MetricsRegistry,
    default_profiler,
    set_enabled,
)
from repro.obs.profile import STEP_BUCKETS


class TestSampling:
    def test_first_launch_is_always_sampled(self):
        profiler = LaunchProfiler(MetricsRegistry(), sample_every=32)
        assert profiler.should_sample() is True

    def test_cadence_is_every_nth(self):
        profiler = LaunchProfiler(MetricsRegistry(), sample_every=4)
        decisions = [profiler.should_sample() for _ in range(9)]
        assert decisions == [
            True, False, False, False,
            True, False, False, False,
            True,
        ]

    def test_sample_every_one_samples_everything(self):
        profiler = LaunchProfiler(MetricsRegistry(), sample_every=1)
        assert all(profiler.should_sample() for _ in range(5))

    def test_disabled_telemetry_never_samples(self):
        profiler = LaunchProfiler(MetricsRegistry(), sample_every=1)
        previous = set_enabled(False)
        try:
            assert profiler.should_sample() is False
        finally:
            set_enabled(previous)
        # The disabled launch was not counted: re-enabling starts the
        # cadence at launch one.
        assert profiler.should_sample() is True


class TestRecording:
    def test_phases_land_under_launch_names(self):
        registry = MetricsRegistry()
        profiler = LaunchProfiler(registry)
        profiler.record_phase("boot", 0.25)
        profiler.record_phase("replay", 0.003)
        histograms = registry.snapshot()["histograms"]
        assert histograms["launch.boot_seconds"]["count"] == 1
        assert histograms["launch.replay_seconds"]["count"] == 1

    def test_steps_use_the_budget_buckets(self):
        registry = MetricsRegistry()
        LaunchProfiler(registry).record_steps(123)
        hist = registry.snapshot()["histograms"]["launch.steps"]
        assert hist["buckets"] == list(STEP_BUCKETS)
        assert hist["count"] == 1


class TestDefaultProfiler:
    def test_default_profiler_is_a_singleton_on_the_registry(self):
        profiler = default_profiler()
        assert profiler is default_profiler()
        assert profiler.sample_every >= 1
