"""Thread-contention tests for `MetricsRegistry`.

Thread-executor campaigns and the serve tier hammer one shared
registry from many threads; these tests pin the locking contract with
the same barrier-gated pattern as the pipeline cache tier: counters
never tear, histogram totals stay internally consistent, and
`snapshot()` taken mid-churn is always a coherent point-in-time copy.
"""

import threading

from repro.obs import MetricsRegistry, metrics_delta

THREADS = 8
ROUNDS = 200


def _hammer(worker, threads=THREADS):
    """Start-gate N workers so they really contend, then join them."""
    gate = threading.Barrier(threads)
    errors = []

    def wrapped(index):
        try:
            gate.wait()
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert errors == []


class TestCounterContention:
    def test_inc_storm_sums_exactly(self):
        registry = MetricsRegistry()

        def worker(index):
            for _ in range(ROUNDS):
                registry.inc("storm")
                registry.inc("weighted", 3)

        _hammer(worker)
        assert registry.counter_value("storm") == THREADS * ROUNDS
        assert registry.counter_value("weighted") == 3 * THREADS * ROUNDS


class TestHistogramContention:
    def test_observe_storm_totals_are_exact(self):
        registry = MetricsRegistry()

        def worker(index):
            for round_ in range(ROUNDS):
                registry.observe("h", float(round_ % 7), buckets=(2.0, 5.0))

        _hammer(worker)
        hist = registry.snapshot()["histograms"]["h"]
        assert hist["count"] == THREADS * ROUNDS
        assert sum(hist["counts"]) == THREADS * ROUNDS


class TestSnapshotUnderChurn:
    def test_snapshot_is_internally_consistent_mid_write(self):
        """Snapshots taken while writers churn must never show a
        histogram whose bucket counts disagree with its total."""
        registry = MetricsRegistry()
        stop = threading.Event()
        failures = []

        def writer():
            i = 0
            while not stop.is_set():
                registry.inc("c")
                registry.observe("h", float(i % 11), buckets=(3.0, 7.0))
                i += 1

        def reader(index):
            for _ in range(ROUNDS):
                snap = registry.snapshot()
                hist = snap["histograms"].get("h")
                if hist and sum(hist["counts"]) != hist["count"]:
                    failures.append(hist)

        churn = [threading.Thread(target=writer) for _ in range(2)]
        for thread in churn:
            thread.start()
        try:
            _hammer(reader)
        finally:
            stop.set()
            for thread in churn:
                thread.join()
        assert failures == []

    def test_absorb_storm_folds_exactly(self):
        """Eight 'workers' absorbing deltas concurrently - the process
        executor's fold, compressed into threads."""
        registry = MetricsRegistry()
        scratch = MetricsRegistry()
        scratch.inc("c", 2)
        scratch.observe("h", 1.0, buckets=(5.0,))
        delta = metrics_delta(
            {"counters": {}, "gauges": {}, "histograms": {}},
            scratch.snapshot(),
        )

        def worker(index):
            for _ in range(ROUNDS):
                registry.absorb(delta)

        _hammer(worker)
        total = THREADS * ROUNDS
        assert registry.counter_value("c") == 2 * total
        hist = registry.snapshot()["histograms"]["h"]
        assert hist["count"] == total
        assert hist["counts"] == [total, 0]
