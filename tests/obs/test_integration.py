"""End-to-end telemetry: the pillars actually record, workers fold,
and the kill switch never changes verdicts.

Counters are asserted as *deltas* against the process registry
(snapshot before, `metrics_delta` after), so these tests stay correct
no matter what earlier tests recorded.
"""

import pytest

from repro.checker.fleet import run_fleet
from repro.inject.campaign import Campaign
from repro.obs import get_registry, metrics_delta, set_enabled
from repro.pipeline import CampaignPipeline
from repro.systems import get_system


def _campaign_delta(executor):
    registry = get_registry()
    before = registry.snapshot()
    report = Campaign(
        get_system("vsftpd"), executor=executor, max_workers=2
    ).run()
    return report, metrics_delta(before, registry.snapshot())


class TestCampaignTelemetry:
    def test_serial_campaign_records_batches_and_launches(self):
        report, delta = _campaign_delta("serial")
        assert delta["counters"]["campaign.runs"] == 1
        assert delta["counters"]["campaign.batches"] > 0
        assert delta["counters"]["launch.requests"] > 0
        # The first launch in a fresh worker is always sampled, so at
        # least one boot/replay phase timing must exist.
        phases = {
            name
            for name in delta["histograms"]
            if name.startswith("launch.")
        }
        assert phases  # boot, replay and/or steps

    def test_process_workers_fold_their_counters_home(self):
        """The 5-tuple protocol: worker deltas land in the parent
        registry, and the folded totals match the serial run's."""
        serial_report, serial_delta = _campaign_delta("serial")
        process_report, process_delta = _campaign_delta("process")
        assert (
            process_delta["counters"]["campaign.batches"]
            == serial_delta["counters"]["campaign.batches"]
        )
        assert frozenset(process_report.vulnerabilities) == frozenset(
            serial_report.vulnerabilities
        )


class TestPipelineTelemetry:
    def test_pipeline_run_emits_counters(self):
        registry = get_registry()
        before = registry.snapshot()
        CampaignPipeline(systems=["vsftpd"]).run()
        delta = metrics_delta(before, registry.snapshot())
        assert delta["counters"]["pipeline.runs"] == 1
        assert delta["counters"]["campaign.runs"] == 1


class TestFleetTelemetry:
    def test_fleet_records_chunks_and_latency(self):
        registry = get_registry()
        before = registry.snapshot()
        run_fleet(systems=["vsftpd"], size=20, agreement_sample=2)
        delta = metrics_delta(before, registry.snapshot())
        assert delta["counters"]["fleet.runs"] == 1
        assert delta["counters"]["fleet.chunks"] > 0
        assert delta["histograms"]["fleet.chunk_seconds"]["count"] > 0


class TestKillSwitchParity:
    def test_disabled_telemetry_is_verdict_identical(self):
        enabled_report = Campaign(get_system("vsftpd")).run()
        previous = set_enabled(False)
        try:
            registry = get_registry()
            before = registry.snapshot()
            disabled_report = Campaign(get_system("vsftpd")).run()
            delta = metrics_delta(before, registry.snapshot())
        finally:
            set_enabled(previous)
        # Delta keys exist (counters enumerate), but nothing moved.
        assert not any(delta["counters"].values())
        assert not any(
            hist["count"] for hist in delta["histograms"].values()
        )
        assert frozenset(disabled_report.vulnerabilities) == frozenset(
            enabled_report.vulnerabilities
        )
        assert (
            disabled_report.misconfigurations_tested
            == enabled_report.misconfigurations_tested
        )


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
