"""Tracer tests: injected clocks make exported traces deterministic.

Every test drives a private `Tracer` with a fake monotonic clock, so
assertions are on exact bytes and exact timestamps, never on wall
time.  The process-wide tracer is swapped with `set_tracer` and always
restored.
"""

import json
import threading
from io import StringIO

from repro.obs import NdjsonSink, Tracer, get_tracer, set_tracer, span


class FakeClock:
    """Monotonic integer clock: 1.0, 2.0, 3.0, ..."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def collecting_tracer():
    spans = []
    tracer = Tracer(sink=spans.append, clock=FakeClock())
    return tracer, spans


class TestDisabledPath:
    def test_default_tracer_is_disabled(self):
        assert not Tracer().enabled

    def test_disabled_span_yields_none(self):
        tracer = Tracer()
        with tracer.span("anything", system="mysql") as record:
            assert record is None
        assert tracer.current_span() is None


class TestSpans:
    def test_timings_come_from_the_injected_clock(self):
        tracer, spans = collecting_tracer()
        with tracer.span("outer"):
            pass
        (record,) = spans
        assert (record.start, record.end) == (1.0, 2.0)
        assert record.duration == 1.0

    def test_nesting_links_parents_and_exports_in_completion_order(self):
        tracer, spans = collecting_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert [s.name for s in spans] == ["inner", "outer"]
        assert spans[0].parent_id == outer.span_id
        assert outer.parent_id is None

    def test_attrs_travel_on_the_span(self):
        tracer, spans = collecting_tracer()
        with tracer.span("campaign.batch", system="mysql", size=8):
            pass
        assert spans[0].attrs == {"system": "mysql", "size": 8}

    def test_sink_fires_even_when_the_body_raises(self):
        tracer, spans = collecting_tracer()
        try:
            with tracer.span("failing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [s.name for s in spans] == ["failing"]
        assert spans[0].end is not None
        assert tracer.current_span() is None

    def test_span_ids_are_unique_and_sequential(self):
        tracer, spans = collecting_tracer()
        for _ in range(3):
            with tracer.span("s"):
                pass
        assert [s.span_id for s in spans] == [1, 2, 3]

    def test_thread_local_stacks_do_not_cross_parent(self):
        tracer, spans = collecting_tracer()
        seen = {}

        def worker():
            with tracer.span("child-thread") as record:
                seen["parent"] = record.parent_id

        with tracer.span("main-thread"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # The other thread's span must NOT claim the main thread's
        # open span as its parent.
        assert seen["parent"] is None


class TestNdjsonExport:
    def test_export_is_byte_deterministic(self):
        buffer = StringIO()
        tracer = Tracer(sink=NdjsonSink(buffer), clock=FakeClock())
        with tracer.span("outer", system="mysql"):
            with tracer.span("inner"):
                pass
        assert buffer.getvalue() == (
            '{"attrs": {}, "duration": 1.0, "end": 3.0, "name": "inner", '
            '"parent_id": 1, "span_id": 2, "start": 2.0}\n'
            '{"attrs": {"system": "mysql"}, "duration": 3.0, "end": 4.0, '
            '"name": "outer", "parent_id": null, "span_id": 1, '
            '"start": 1.0}\n'
        )

    def test_every_line_is_valid_json(self):
        buffer = StringIO()
        tracer = Tracer(sink=NdjsonSink(buffer), clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        lines = buffer.getvalue().splitlines()
        decoded = [json.loads(line) for line in lines]
        assert [d["name"] for d in decoded] == ["a", "b"]
        assert set(decoded[0]) == {
            "attrs", "duration", "end", "name",
            "parent_id", "span_id", "start",
        }


class TestProcessTracer:
    def test_set_tracer_swaps_and_returns_previous(self):
        replacement, spans = collecting_tracer()
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
            with span("via-module-helper"):
                pass
        finally:
            set_tracer(previous)
        assert [s.name for s in spans] == ["via-module-helper"]

    def test_module_span_is_a_noop_while_disabled(self):
        assert not get_tracer().enabled  # the shipped default
        with span("campaign.run", system="mysql") as record:
            assert record is None
