"""Unit+integration tests for the §3.2 design-lint detectors."""

from repro.knowledge import Unit


class TestCaseSensitivity:
    def test_mysql_single_sensitive_outlier(self, evaluation):
        # Figure 6(a): innodb_file_format_check is the one sensitive
        # string option in an otherwise insensitive system.
        finding = evaluation.result("mysql").lint.case_sensitivity
        assert finding.sensitive == ["innodb_file_format_check"]
        assert finding.inconsistent
        assert finding.minority == ["innodb_file_format_check"]

    def test_vsftpd_consistent_insensitive(self, evaluation):
        finding = evaluation.result("vsftpd").lint.case_sensitivity
        assert not finding.sensitive
        assert len(finding.insensitive) >= 10
        assert not finding.inconsistent


class TestUnits:
    def test_apache_maxmemfree_kb_outlier(self, evaluation):
        # Figure 6(b): MaxMemFree in KB among byte-sized parameters.
        finding = evaluation.result("apache").lint.units
        size = finding.by_dimension["size"]
        assert size[Unit.KILOBYTES] == ["MaxMemFree"]
        assert "size" in finding.inconsistent_dimensions()

    def test_storage_unit_naming_mitigation(self, evaluation):
        # §5.2: Storage-A exposes unit info in names (cleanup.msec...).
        finding = evaluation.result("storage_a").lint.units
        assert "cleanup.msec" in finding.unit_named
        assert "takeover.sec" in finding.unit_named
        assert "scrub.interval.hour" in finding.unit_named


class TestOverruling:
    def test_squid_booleans_overruled(self, evaluation):
        finding = evaluation.result("squid").lint.overruling
        assert "memory_pools" in finding.params
        assert "buffered_logs" in finding.params
        assert len(finding.params) >= 6

    def test_postgresql_never_overrules(self, evaluation):
        finding = evaluation.result("postgresql").lint.overruling
        assert finding.params == []


class TestUnsafeApis:
    def test_squid_sscanf(self, evaluation):
        finding = evaluation.result("squid").lint.unsafe
        assert any("sscanf" in apis for apis in finding.params.values())
        assert "http_port" in finding.params

    def test_vsftpd_atoi_int_table_only(self, evaluation):
        finding = evaluation.result("vsftpd").lint.unsafe
        assert "listen_port" in finding.params  # int table
        assert "ssl_enable" not in finding.params  # bool table
        assert "ftp_username" not in finding.params  # string table

    def test_strtol_systems_clean(self, evaluation):
        for name in ("mysql", "postgresql", "openldap"):
            finding = evaluation.result(name).lint.unsafe
            assert finding.affected == [], name


class TestUndocumented:
    def test_openldap_undocumented_clamps(self, evaluation):
        # index_intlen's [4,255] and sockbuf's cap are not in the manual.
        finding = evaluation.result("openldap").lint.undocumented
        assert "index_intlen" in finding.ranges
        assert "sockbuf_max_incoming" in finding.ranges

    def test_vsftpd_undocumented_dependencies(self, evaluation):
        finding = evaluation.result("vsftpd").lint.undocumented
        assert len(finding.control_deps) >= 8

    def test_documented_ranges_not_flagged(self, evaluation):
        # threads is documented as "between 2 and 64" in the manual.
        finding = evaluation.result("openldap").lint.undocumented
        assert "threads" not in finding.ranges
