"""Tests for the 18-project mapping-convention survey (Table 1)."""

from repro.systems.corpus import classify, convention_counts, survey_entries, validate


class TestSurvey:
    def test_eighteen_projects(self):
        assert len(survey_entries()) == 18

    def test_paper_distribution(self):
        # Table 1: 9 structure, 4 comparison, 4 container, 1 hybrid.
        assert convention_counts() == {
            "structure": 9,
            "comparison": 4,
            "container": 4,
            "hybrid": 1,
        }

    def test_every_snippet_valid(self):
        for entry in survey_entries():
            assert validate(entry), entry.project

    def test_classification_matches_expectation(self):
        for entry in survey_entries():
            assert classify(entry) == entry.expected_convention, entry.project

    def test_openldap_is_the_hybrid(self):
        hybrid = [e for e in survey_entries() if classify(e) == "hybrid"]
        assert [e.project for e in hybrid] == ["OpenLDAP"]

    def test_projects_unique(self):
        names = [e.project for e in survey_entries()]
        assert len(names) == len(set(names))
