"""Migration parity: the declarative `SystemSpec` builds of vsftpd,
openldap, apache, squid and mysql are byte-identical to the imperative
builders they replaced.

The legacy builders below are the pre-migration `build()` bodies,
frozen here as the reference.  Parity is checked at every level the
pipeline consumes: rendered template, decoder/effective/manual/truth
tables, the inference-cache fingerprint, the full constraint report
and the complete campaign verdict set.
"""

import pytest

from repro.core.accuracy import (
    truth_basic,
    truth_ctrl_dep,
    truth_range,
    truth_semantic,
    truth_value_rel,
)
from repro.core.engine import SpexOptions
from repro.inject.ar import DirectiveDialect, KeyValueDialect
from repro.inject.campaign import Campaign
from repro.pipeline.cache import spex_fingerprint
from repro.systems import apache, get_system, mysql, openldap, squid, vsftpd
from repro.systems.base import (
    SubjectSystem,
    decode_bool,
    decode_int,
    decode_size,
    decode_string,
)


def _legacy_vsftpd() -> SubjectSystem:
    bools = [
        "listen",
        "listen_ipv6",
        "anonymous_enable",
        "anon_upload_enable",
        "anon_mkdir_write_enable",
        "local_enable",
        "write_enable",
        "chroot_local_user",
        "virtual_use_local_privs",
        "one_process_mode",
        "ssl_enable",
        "ssl_tlsv1",
        "require_ssl_reuse",
        "delay_failed_login",
    ]
    ints = [
        "listen_port",
        "max_clients",
        "max_per_ip",
        "anon_max_rate",
        "idle_session_timeout",
        "data_connection_timeout",
        "accept_timeout",
        "connect_timeout",
        "trans_chunk_size",
    ]
    strs = ["ftp_username", "banner_file", "local_root"]
    decoders = {p: decode_bool for p in bools}
    decoders.update({p: decode_int for p in ints})
    decoders.update({p: decode_string for p in strs})
    effective = {p: (p, ()) for p in bools + ints + strs}
    effective["listen"] = ("listen_ipv4", ())
    truth = [truth_basic(p, "int") for p in bools + ints]
    truth += [truth_basic(p, "string") for p in strs]
    truth += [
        truth_semantic("listen_port", "PORT"),
        truth_semantic("accept_timeout", "TIME"),
        truth_semantic("idle_session_timeout", "TIME"),
        truth_semantic("data_connection_timeout", "TIME"),
        truth_semantic("connect_timeout", "TIME"),
        truth_semantic("trans_chunk_size", "SIZE"),
        truth_semantic("ftp_username", "USER"),
        truth_semantic("banner_file", "FILE"),
        truth_semantic("local_root", "DIRECTORY"),
        truth_range("max_clients"),
        truth_range("max_per_ip"),
        truth_ctrl_dep("ssl_tlsv1", "ssl_enable"),
        truth_ctrl_dep("require_ssl_reuse", "ssl_tlsv1"),
        truth_ctrl_dep("chroot_local_user", "local_enable"),
        truth_ctrl_dep("require_ssl_reuse", "ssl_enable"),
        truth_ctrl_dep("virtual_use_local_privs", "one_process_mode"),
        truth_ctrl_dep("virtual_use_local_privs", "local_enable"),
        truth_ctrl_dep("local_root", "chroot_local_user"),
        truth_ctrl_dep("anon_upload_enable", "write_enable"),
        truth_ctrl_dep("trans_chunk_size", "anon_max_rate"),
    ]
    return SubjectSystem(
        name="vsftpd",
        display_name="VSFTP",
        description="Miniature vsftpd with the paper's VSFTP traits",
        sources={"vsftpd.c": vsftpd.VSFTPD_MAIN},
        annotations=vsftpd.ANNOTATIONS,
        dialect=KeyValueDialect("="),
        config_path="/etc/vsftpd.conf",
        default_config=vsftpd.DEFAULT_CONFIG,
        tests=vsftpd._tests(),
        effective_locations=effective,
        decoders=decoders,
        manual=vsftpd.MANUAL,
        ground_truth=truth,
    )


def _legacy_openldap() -> SubjectSystem:
    decoders = {
        "listener-threads": decode_int,
        "threads": decode_int,
        "index_intlen": decode_int,
        "sockbuf_max_incoming": decode_size,
        "entry_cache_bytes": decode_size,
        "cachesize": decode_int,
        "cachefree": decode_int,
        "sizelimit": decode_int,
        "idletimeout": decode_int,
        "writetimeout": decode_int,
        "checkpoint": decode_int,
        "readonly": decode_string,
        "require_tls": decode_string,
    }
    effective = {
        "listener-threads": ("listener_threads", ()),
        "threads": ("worker_threads", ()),
        "index_intlen": ("index_intlen", ()),
        "sockbuf_max_incoming": ("sockbuf_max_incoming", ()),
        "entry_cache_bytes": ("entry_cache_bytes", ()),
        "cachesize": ("cachesize", ()),
        "cachefree": ("cachefree", ()),
        "sizelimit": ("sizelimit", ()),
        "idletimeout": ("idletimeout", ()),
        "writetimeout": ("writetimeout", ()),
        "checkpoint": ("checkpoint_interval", ()),
        "pidfile": ("pidfile_path", ()),
        "argsfile": ("argsfile_path", ()),
        "directory": ("db_directory", ()),
    }
    ints_32 = [
        "listener-threads",
        "threads",
        "index_intlen",
        "sockbuf_max_incoming",
        "entry_cache_bytes",
        "cachesize",
        "cachefree",
        "sizelimit",
        "idletimeout",
        "writetimeout",
        "checkpoint",
    ]
    truth = [truth_basic(p, "int") for p in ints_32]
    truth += [
        truth_basic("readonly", "string"),
        truth_basic("require_tls", "string"),
        truth_basic("pidfile", "string"),
        truth_basic("argsfile", "string"),
        truth_basic("directory", "string"),
        truth_semantic("pidfile", "FILE"),
        truth_semantic("argsfile", "FILE"),
        truth_semantic("directory", "DIRECTORY"),
        truth_semantic("sockbuf_max_incoming", "SIZE"),
        truth_semantic("entry_cache_bytes", "SIZE"),
        truth_semantic("idletimeout", "TIME"),
        truth_semantic("writetimeout", "TIME"),
        truth_semantic("checkpoint", "TIME"),
        truth_range("index_intlen"),
        truth_range("sockbuf_max_incoming"),
        truth_range("threads"),
        truth_range("readonly"),
        truth_range("require_tls"),
        truth_range("sizelimit"),
        truth_value_rel("cachefree", "cachesize"),
    ]

    def setup_os(os_model):
        os_model.add_dir("/data/ldap")

    return SubjectSystem(
        name="openldap",
        display_name="OpenLDAP",
        description="Miniature slapd with the paper's OpenLDAP traits",
        sources={"slapd.c": openldap.SLAPD_MAIN},
        annotations=openldap.ANNOTATIONS,
        dialect=DirectiveDialect(),
        config_path="/etc/openldap/slapd.conf",
        default_config=openldap.DEFAULT_CONFIG,
        tests=openldap._tests(),
        effective_locations=effective,
        decoders=decoders,
        manual=openldap.MANUAL,
        ground_truth=truth,
        setup_os=setup_os,
    )


def _legacy_apache() -> SubjectSystem:
    decoders = {
        "Listen": decode_int,
        "ThreadLimit": decode_int,
        "ThreadsPerChild": decode_int,
        "ServerLimit": decode_int,
        "MaxKeepAliveRequests": decode_int,
        "KeepAlive": decode_bool,
        "KeepAliveTimeout": decode_int,
        "TimeOut": decode_int,
        "SendBufferSize": decode_size,
        "MaxMemFree": decode_int,
    }
    effective = {
        "Listen": ("listen_port", ()),
        "ThreadLimit": ("thread_limit", ()),
        "ThreadsPerChild": ("threads_per_child", ()),
        "ServerLimit": ("server_limit", ()),
        "MaxKeepAliveRequests": ("max_keepalive_requests", ()),
        "KeepAlive": ("keep_alive", ()),
        "KeepAliveTimeout": ("keep_alive_timeout", ()),
        "TimeOut": ("request_timeout", ()),
        "SendBufferSize": ("send_buffer_size", ()),
        "HostnameLookups": ("hostname_lookups", ()),
        "DocumentRoot": ("document_root", ()),
        "ServerName": ("server_name", ()),
        "User": ("run_user", ()),
        "PidFile": ("pid_file_path", ()),
        "AcceptFilter": ("accept_filter_mode", ()),
    }
    ints = [
        "Listen",
        "ThreadLimit",
        "ThreadsPerChild",
        "ServerLimit",
        "MaxKeepAliveRequests",
        "KeepAliveTimeout",
        "TimeOut",
        "SendBufferSize",
        "MaxMemFree",
    ]
    strs = [
        "KeepAlive",
        "HostnameLookups",
        "LogLevel",
        "DocumentRoot",
        "ServerName",
        "User",
        "PidFile",
        "AcceptFilter",
    ]
    truth = [truth_basic(p, "int") for p in ints]
    truth += [truth_basic(p, "string") for p in strs]
    truth += [
        truth_semantic("Listen", "PORT"),
        truth_semantic("SendBufferSize", "SIZE"),
        truth_semantic("MaxMemFree", "SIZE"),
        truth_semantic("KeepAliveTimeout", "TIME"),
        truth_semantic("DocumentRoot", "DIRECTORY"),
        truth_semantic("ServerName", "HOSTNAME"),
        truth_semantic("User", "USER"),
        truth_range("KeepAlive"),
        truth_range("HostnameLookups"),
        truth_range("LogLevel"),
        truth_range("AcceptFilter"),
        truth_ctrl_dep("KeepAliveTimeout", "KeepAlive"),
    ]

    def setup_os(os_model):
        os_model.add_dir("/data/www")

    return SubjectSystem(
        name="apache",
        display_name="Apache httpd",
        description="Miniature httpd with the paper's Apache traits",
        sources={"httpd.c": apache.HTTPD_MAIN},
        annotations=apache.ANNOTATIONS,
        dialect=DirectiveDialect(),
        config_path="/etc/httpd.conf",
        default_config=apache.DEFAULT_CONFIG,
        tests=apache._tests(),
        effective_locations=effective,
        decoders=decoders,
        manual=apache.MANUAL,
        ground_truth=truth,
        setup_os=setup_os,
    )


def _legacy_squid() -> SubjectSystem:
    ints = {
        "http_port": decode_int,
        "icp_port": decode_int,
        "cache_mem": decode_int,
        "request_body_max_size": decode_size,
        "reply_body_max_size": decode_size,
        "readahead_gap": decode_int,
        "pconn_timeout": decode_int,
        "client_lifetime": decode_int,
        "connect_retry_delay": decode_int,
        "memory_pools_limit": decode_int,
        "max_filedescriptors": decode_int,
    }
    bools = {
        "memory_pools": decode_bool,
        "half_closed_clients": decode_bool,
        "detect_broken_pconn": decode_bool,
        "client_db": decode_bool,
        "httpd_suppress_version_string": decode_bool,
        "buffered_logs": decode_bool,
        "dns_defnames": decode_bool,
    }
    decoders = {**ints, **bools}
    effective = {
        "http_port": ("http_port", ()),
        "icp_port": ("icp_port", ()),
        "cache_mem": ("cache_mem_mb", ()),
        "request_body_max_size": ("request_body_max_size", ()),
        "reply_body_max_size": ("reply_body_max_size", ()),
        "readahead_gap": ("readahead_gap_kb", ()),
        "pconn_timeout": ("pconn_timeout", ()),
        "client_lifetime": ("client_lifetime", ()),
        "connect_retry_delay": ("connect_retry_delay", ()),
        "max_filedescriptors": ("max_filedescriptors", ()),
        "memory_pools_limit": ("memory_pools_limit", ()),
        "memory_pools": ("memory_pools", ()),
        "half_closed_clients": ("half_closed_clients", ()),
        "detect_broken_pconn": ("detect_broken_pconn", ()),
        "client_db": ("client_db", ()),
        "httpd_suppress_version_string": ("httpd_suppress_version", ()),
        "buffered_logs": ("buffered_logs", ()),
        "dns_defnames": ("dns_defnames", ()),
        "cache_dir": ("cache_dir", ()),
        "coredump_dir": ("coredump_dir", ()),
        "pid_filename": ("pid_filename", ()),
        "visible_hostname": ("visible_hostname", ()),
        "dns_nameservers": ("dns_nameserver", ()),
    }
    int_names = [
        "http_port",
        "icp_port",
        "cache_mem",
        "request_body_max_size",
        "reply_body_max_size",
        "readahead_gap",
        "pconn_timeout",
        "client_lifetime",
        "connect_retry_delay",
        "max_filedescriptors",
        "memory_pools_limit",
    ]
    bool_names = [
        "memory_pools",
        "half_closed_clients",
        "detect_broken_pconn",
        "client_db",
        "httpd_suppress_version_string",
        "buffered_logs",
        "dns_defnames",
    ]
    enums = [
        "cache_replacement_policy",
        "memory_replacement_policy",
        "uri_whitespace",
    ]
    strs = [
        "cache_dir",
        "coredump_dir",
        "pid_filename",
        "visible_hostname",
        "dns_nameservers",
    ]
    truth = [truth_basic(p, "int") for p in int_names]
    truth += [truth_basic(p, "int") for p in bool_names]
    truth += [truth_basic(p, "string") for p in enums + strs]
    truth += [
        truth_semantic("http_port", "PORT"),
        truth_semantic("icp_port", "PORT"),
        truth_semantic("cache_mem", "SIZE"),
        truth_semantic("readahead_gap", "SIZE"),
        truth_semantic("connect_retry_delay", "TIME"),
        truth_semantic("pconn_timeout", "TIME"),
        truth_semantic("request_body_max_size", "SIZE"),
        truth_semantic("cache_dir", "FILE"),
        truth_semantic("pid_filename", "FILE"),
        truth_semantic("dns_nameservers", "IP_ADDRESS"),
        truth_range("max_filedescriptors"),
        truth_semantic("memory_pools_limit", "SIZE"),
        truth_ctrl_dep("memory_pools_limit", "memory_pools"),
    ]
    truth += [truth_range(p) for p in bool_names + enums]

    def setup_os(os_model):
        os_model.add_dir("/var/cache/squid")

    return SubjectSystem(
        name="squid",
        display_name="Squid",
        description="Miniature Squid with the paper's Squid traits",
        sources={"squid.c": squid.SQUID_MAIN},
        annotations=squid.ANNOTATIONS,
        dialect=DirectiveDialect(),
        config_path="/etc/squid/squid.conf",
        default_config=squid.DEFAULT_CONFIG,
        tests=squid._tests(),
        effective_locations=effective,
        decoders=decoders,
        manual=squid.MANUAL,
        ground_truth=truth,
        setup_os=setup_os,
    )


def _legacy_mysql() -> SubjectSystem:
    ints = {
        "port": decode_int,
        "max_connections": decode_int,
        "key_buffer_size": decode_size,
        "sort_buffer_size": decode_size,
        "max_allowed_packet": decode_size,
        "wait_timeout": decode_int,
        "interactive_timeout": decode_int,
        "net_retry_count": decode_int,
        "table_open_cache": decode_int,
        "ft_min_word_len": decode_int,
        "ft_max_word_len": decode_int,
        "performance_schema_events_waits_history_size": decode_int,
        "innodb_thread_sleep_delay": decode_int,
        "innodb_thread_concurrency": decode_int,
        "thread_cache_size": decode_int,
        "slow_query_log": decode_int,
    }
    var_of = {
        "port": "mysql_port",
        "max_connections": "max_connections",
        "key_buffer_size": "key_buffer_size",
        "sort_buffer_size": "sort_buffer_size",
        "max_allowed_packet": "max_allowed_packet",
        "wait_timeout": "wait_timeout",
        "interactive_timeout": "interactive_timeout",
        "net_retry_count": "net_retry_count",
        "table_open_cache": "table_open_cache",
        "ft_min_word_len": "ft_min_word_len",
        "ft_max_word_len": "ft_max_word_len",
        "performance_schema_events_waits_history_size": "waits_history_size",
        "innodb_thread_sleep_delay": "innodb_thread_sleep_delay",
        "innodb_thread_concurrency": "innodb_thread_concurrency",
        "thread_cache_size": "thread_cache_size",
        "slow_query_log": "slow_query_log",
        "datadir": "datadir",
        "ft_stopword_file": "ft_stopword_file",
        "socket": "socket_path",
        "pid_file": "pid_file",
        "log_error": "log_error",
        "slow_query_log_file": "slow_query_log_file",
        "innodb_file_format_check": "innodb_file_format_check",
        "binlog_format": "binlog_format",
        "innodb_flush_method": "innodb_flush_method",
    }
    int_names = list(ints)
    strs = [
        "datadir",
        "ft_stopword_file",
        "socket",
        "pid_file",
        "log_error",
        "slow_query_log_file",
        "innodb_file_format_check",
        "binlog_format",
        "innodb_flush_method",
    ]
    truth = [truth_basic(p, "int") for p in int_names]
    truth += [truth_basic(p, "string") for p in strs]
    truth += [truth_range(p) for p in int_names]  # table min/max columns
    truth += [
        truth_range("innodb_file_format_check"),
        truth_range("binlog_format"),
        truth_range("innodb_flush_method"),
        truth_semantic("port", "PORT"),
        truth_semantic("ft_stopword_file", "FILE"),
        truth_semantic("datadir", "DIRECTORY"),
        truth_semantic("pid_file", "FILE"),
        truth_semantic("key_buffer_size", "SIZE"),
        truth_semantic("sort_buffer_size", "SIZE"),
        truth_semantic("innodb_thread_sleep_delay", "TIME"),
        truth_semantic("wait_timeout", "TIME"),
        truth_semantic("interactive_timeout", "TIME"),
        truth_value_rel("ft_min_word_len", "ft_max_word_len"),
        truth_ctrl_dep(
            "innodb_thread_sleep_delay", "innodb_thread_concurrency"
        ),
    ]

    def setup_os(os_model):
        os_model.add_dir("/data/mysql")

    return SubjectSystem(
        name="mysql",
        display_name="MySQL",
        description="Miniature mysqld with the paper's MySQL traits",
        sources={"mysqld.c": mysql.MYSQLD_MAIN},
        annotations=mysql.ANNOTATIONS,
        dialect=KeyValueDialect("="),
        config_path="/etc/my.cnf",
        default_config=mysql.DEFAULT_CONFIG,
        tests=mysql._tests(),
        effective_locations={p: (v, ()) for p, v in var_of.items()},
        decoders=ints,
        manual=mysql.MANUAL,
        ground_truth=truth,
        setup_os=setup_os,
    )


_LEGACY = {
    "vsftpd": _legacy_vsftpd,
    "openldap": _legacy_openldap,
    "apache": _legacy_apache,
    "squid": _legacy_squid,
    "mysql": _legacy_mysql,
}

MIGRATED = sorted(_LEGACY)


@pytest.fixture(params=MIGRATED)
def pair(request):
    return _LEGACY[request.param](), get_system(request.param)


class TestStaticParity:
    def test_template_serialization(self, pair):
        legacy, spec = pair
        assert legacy.template_ar().serialize() == spec.template_ar().serialize()

    def test_tables(self, pair):
        legacy, spec = pair
        assert legacy.effective_locations == spec.effective_locations
        assert legacy.manual == spec.manual
        # Legacy dicts leaned on the decode_string fallback for some
        # parameters; the spec states every decoder explicitly.  The
        # *resolved* decoder per template parameter is what must agree.
        for param in legacy.template_ar().names():
            assert legacy.decoder_for(param) is spec.decoder_for(param), param

    def test_ground_truth(self, pair):
        legacy, spec = pair
        assert set(legacy.ground_truth) == set(spec.ground_truth)
        assert len(legacy.ground_truth) == len(spec.ground_truth)

    def test_inference_fingerprint(self, pair):
        legacy, spec = pair
        options = SpexOptions()
        assert spex_fingerprint(
            legacy.sources, legacy.annotations, options
        ) == spex_fingerprint(spec.sources, spec.annotations, options)

    def test_emulated_world(self, pair):
        legacy, spec = pair
        a, b = legacy.make_os(), spec.make_os()
        assert {
            p: (n.is_dir, n.mode, n.owner, n.content) for p, n in a.files.items()
        } == {
            p: (n.is_dir, n.mode, n.owner, n.content) for p, n in b.files.items()
        }


class TestBehaviouralParity:
    def test_spex_report(self, pair):
        legacy, spec = pair
        legacy_report = Campaign(system=legacy).run_spex()
        spec_report = Campaign(system=spec).run_spex()
        assert legacy_report.summary_dict() == spec_report.summary_dict()

    def test_campaign_verdicts(self, pair):
        legacy, spec = pair

        def signature(system):
            report = Campaign(system=system).run()
            return [
                (
                    v.misconfiguration.settings,
                    v.misconfiguration.rule,
                    v.reaction.category,
                    v.reaction.pinpointed,
                    v.failed_tests,
                )
                for v in report.verdicts
            ]

        assert signature(legacy) == signature(spec)
