"""Edge cases for the injected-string decoders in `repro.systems.base`.

The decoders recover the *user-intended* value from an injected config
string; silent-violation detection compares that intent against the
system's effective value.  The contract under test: parseable text
decodes to the intended number, and unparseable text round-trips as a
string (never raises) so the comparison still runs.
"""

import pytest

from repro.systems import get_system
from repro.systems.base import (
    decode_bool,
    decode_int,
    decode_size,
    decode_string,
    decode_time_seconds,
)


class TestDecodeInt:
    @pytest.mark.parametrize(
        ("text", "value"),
        [
            ("80", 80),
            ("  80  ", 80),
            ("-1", -1),
            ("+5", 5),
            ("0", 0),
            ("007", 7),
            # Python's int() accepts underscore separators; the intent
            # is still the number.
            ("1_000", 1000),
        ],
    )
    def test_parseable(self, text, value):
        assert decode_int(text) == value

    @pytest.mark.parametrize(
        "text", ["abc", "10.5", "1e3", "0x10", "", "12 34", "--1", "nan"]
    )
    def test_unparseable_round_trips_stripped(self, text):
        assert decode_int(f" {text} ") == text

    def test_never_raises_on_junk(self):
        assert decode_int("\t\n") == ""


class TestDecodeSize:
    @pytest.mark.parametrize(
        ("text", "value"),
        [
            ("64k", 64 * 1024),
            ("64K", 64 * 1024),
            ("64kb", 64 * 1024),
            ("64KB", 64 * 1024),
            ("2m", 2 * 1024**2),
            ("2MB", 2 * 1024**2),
            ("1g", 1024**3),
            ("1Gb", 1024**3),
            # Whitespace between the number and the suffix is intent,
            # not an error.
            ("64 k", 64 * 1024),
            ("  8m  ", 8 * 1024**2),
            # Negative sizes decode; range checking is the checker's
            # job, not the decoder's.
            ("-1k", -1024),
            ("0k", 0),
        ],
    )
    def test_suffixed(self, text, value):
        assert decode_size(text) == value

    def test_plain_number_falls_through_to_int(self):
        assert decode_size("1048576") == 1048576
        assert decode_size(" 42 ") == 42

    @pytest.mark.parametrize("text", ["1.5k", "k", "kb", "xk", "--2m"])
    def test_bad_number_round_trips_unstripped(self, text):
        # A recognised suffix with an unparseable number returns the
        # *original* text (the silent-violation comparison sees the
        # raw injected string).
        assert decode_size(text) == text

    def test_unsuffixed_junk_round_trips_stripped(self):
        assert decode_size(" sixty-four ") == "sixty-four"

    def test_longest_suffix_wins(self):
        # "kb" must not be parsed as number "1k" + suffix "b" nor
        # mis-split as "1" + "k" leaving a trailing "b".
        assert decode_size("1kb") == 1024


class TestDecodeBoolAndFriends:
    @pytest.mark.parametrize(
        "word", ["on", "ON", "yes", "TRUE", "enable", "Enabled", "1"]
    )
    def test_truthy_words(self, word):
        assert decode_bool(word) == 1

    @pytest.mark.parametrize(
        "word", ["off", "No", "false", "disable", "DISABLED", "0"]
    )
    def test_falsy_words(self, word):
        assert decode_bool(word) == 0

    def test_unknown_word_round_trips(self):
        assert decode_bool("maybe") == "maybe"

    def test_string_strips(self):
        assert decode_string("  /var/www  ") == "/var/www"

    def test_time_is_int_semantics(self):
        assert decode_time_seconds(" 65 ") == 65
        assert decode_time_seconds("forever") == "forever"


class TestDecoderFallback:
    def test_unlisted_param_decodes_as_string(self):
        # decoder_for() must hand back the string decoder for params
        # with no explicit entry - the SystemSpec migration relies on
        # explicit decode_string entries being behaviourally identical
        # to the legacy omission.
        system = get_system("vsftpd")
        assert system.decoder_for("no_such_param") is decode_string
