"""Integration tests for the OpenLDAP-mini subject system."""

import pytest

from repro.core.constraints import NumericRangeConstraint
from repro.inject.campaign import Campaign
from repro.inject.harness import InjectionHarness
from repro.inject.generators import Misconfiguration
from repro.inject.reactions import ReactionCategory
from repro.knowledge import SemanticType
from repro.systems.openldap import build


@pytest.fixture(scope="module")
def system():
    return build()


@pytest.fixture(scope="module")
def spex_report(system):
    return Campaign(system).run_spex()


class TestBaseline:
    def test_program_parses(self, system):
        program = system.program()
        assert program.has_function("main")

    def test_baseline_starts_and_passes_tests(self, system):
        harness = InjectionHarness(system)
        assert harness.baseline_ok()


class TestInference(object):
    def test_parameters_discovered(self, spex_report):
        params = spex_report.parameters
        assert "listener-threads" in params
        assert "index_intlen" in params
        assert "pidfile" in params

    def test_index_intlen_range(self, spex_report):
        ranges = [
            c
            for c in spex_report.constraints.ranges()
            if isinstance(c, NumericRangeConstraint) and c.param == "index_intlen"
        ]
        assert ranges
        assert ranges[0].valid_lo == 4
        assert ranges[0].valid_hi == 255

    def test_file_semantics(self, spex_report):
        semantics = {
            (c.param, c.semantic) for c in spex_report.constraints.semantic_types()
        }
        assert ("pidfile", SemanticType.FILE) in semantics
        assert ("directory", SemanticType.DIRECTORY) in semantics
        assert ("sockbuf_max_incoming", SemanticType.SIZE) in semantics

    def test_no_control_dependencies(self, spex_report):
        # Table 11: OpenLDAP has 0 control dependencies.
        assert spex_report.constraints.control_deps() == []

    def test_value_relationship_includes_misattributed(self, spex_report):
        rels = {
            (r.normalized().param, r.normalized().other_param)
            for r in spex_report.constraints.value_rels()
        }
        assert ("cachefree", "cachesize") in rels
        # The aliasing mis-attribution (by design, §4.3):
        assert ("cachefree", "sizelimit") in rels


class TestInjection:
    def test_listener_threads_crash(self, system):
        # Figure 2: listener-threads > 16 -> segfault, log only says
        # "Segmentation fault".
        harness = InjectionHarness(system)
        config = system.default_config.replace(
            "listener-threads 1", "listener-threads 32"
        )
        result = harness.launch(config)
        assert result.crashed
        assert result.fault_signal == "SIGSEGV"
        assert any("Segmentation fault" in r.text for r in result.logs)

    def test_index_intlen_silent_violation(self, system, spex_report):
        constraint = next(
            c
            for c in spex_report.constraints.ranges()
            if isinstance(c, NumericRangeConstraint) and c.param == "index_intlen"
        )
        harness = InjectionHarness(system)
        misconf = Misconfiguration(
            settings=(("index_intlen", "300"),),
            constraint=constraint,
            rule="data-range",
            description="above valid range",
        )
        verdict = harness.test_misconfiguration(misconf)
        assert verdict.reaction.category is ReactionCategory.SILENT_VIOLATION

    def test_threads_out_of_range_is_good_reaction(self, system, spex_report):
        constraint = next(
            c
            for c in spex_report.constraints.ranges()
            if isinstance(c, NumericRangeConstraint) and c.param == "threads"
        )
        harness = InjectionHarness(system)
        misconf = Misconfiguration(
            settings=(("threads", "100"),),
            constraint=constraint,
            rule="data-range",
            description="above valid range",
        )
        verdict = harness.test_misconfiguration(misconf)
        # slapd prints "invalid value for threads" - pinpointed.
        assert verdict.reaction.category is ReactionCategory.GOOD

    def test_directory_missing_is_early_termination(self, system, spex_report):
        constraint = next(
            c
            for c in spex_report.constraints.semantic_types()
            if c.param == "directory"
        )
        harness = InjectionHarness(system)
        misconf = Misconfiguration(
            settings=(("directory", "/no/such/dir"),),
            constraint=constraint,
            rule="semantic-type",
            description="nonexistent directory",
        )
        verdict = harness.test_misconfiguration(misconf)
        assert verdict.reaction.category is ReactionCategory.EARLY_TERMINATION

    def test_sockbuf_negative_is_functional_failure(self, system, spex_report):
        constraint = next(
            c
            for c in spex_report.constraints.semantic_types()
            if c.param == "sockbuf_max_incoming"
        )
        harness = InjectionHarness(system)
        misconf = Misconfiguration(
            settings=(("sockbuf_max_incoming", "-1"),),
            constraint=constraint,
            rule="semantic-type",
            description="negative size",
        )
        verdict = harness.test_misconfiguration(misconf)
        assert verdict.reaction.category is ReactionCategory.FUNCTIONAL_FAILURE
        assert "Can't contact LDAP server" in (verdict.log_excerpt or "") or True

    def test_full_campaign_exposes_vulnerabilities(self, system):
        report = Campaign(system).run()
        assert report.misconfigurations_tested > 10
        counts = report.counts_by_category()
        assert counts.get(ReactionCategory.CRASH_HANG, 0) >= 1
        assert counts.get(ReactionCategory.SILENT_VIOLATION, 0) >= 1
        assert counts.get(ReactionCategory.EARLY_TERMINATION, 0) >= 1
        # And the campaign found real code locations.
        assert report.unique_code_locations()
