"""Cross-system integration: every miniature runs, gets analysed,
injected and linted, with the paper's headline shapes holding."""

import pytest

from repro.inject.reactions import ReactionCategory as RC
from repro.systems import all_systems, system_names


class TestRegistry:
    def test_seven_systems_registered(self):
        # The paper's seven plus the declarative-built nginx (#8).
        assert system_names() == [
            "apache",
            "mysql",
            "nginx",
            "openldap",
            "postgresql",
            "squid",
            "storage_a",
            "vsftpd",
        ]

    def test_all_parse_and_have_main(self):
        for system in all_systems():
            assert system.program().has_function("main"), system.name

    def test_all_params_have_manual_or_are_undocumented_by_design(self):
        for system in all_systems():
            assert system.manual, system.name

    def test_decoders_and_effective_locations_reference_params(self):
        for system in all_systems():
            template = system.template_ar()
            names = set(template.names())
            for param in system.effective_locations:
                assert param in names, (system.name, param)


class TestBaselines:
    @pytest.mark.parametrize("name", [
        "apache", "mysql", "nginx", "openldap", "postgresql", "squid",
        "storage_a", "vsftpd",
    ])
    def test_baseline_passes(self, name, evaluation):
        from repro.inject.harness import InjectionHarness

        system = evaluation.result(name).system
        assert InjectionHarness(system).baseline_ok()


class TestCampaignShapes:
    def test_silent_violation_dominates_overall(self, evaluation):
        totals = {}
        for res in evaluation.results():
            for cat, n in res.campaign.counts_by_category().items():
                totals[cat] = totals.get(cat, 0) + n
        assert totals[RC.SILENT_VIOLATION] == max(totals.values())

    def test_storage_a_has_no_crashes_or_early_terminations(self, evaluation):
        counts = evaluation.result("storage_a").campaign.counts_by_category()
        assert counts.get(RC.CRASH_HANG, 0) == 0
        assert counts.get(RC.EARLY_TERMINATION, 0) == 0

    def test_guc_style_systems_have_few_range_vulnerabilities(self, evaluation):
        # §5.2: the min/max tables of PostgreSQL yield good reactions
        # for out-of-range values (it names the parameter and exits).
        pg = evaluation.result("postgresql").campaign
        range_vulns = [v for v in pg.vulnerabilities if v.rule == "data-range"]
        assert len(range_vulns) <= 2

    def test_vsftpd_silent_ignorance_present(self, evaluation):
        counts = evaluation.result("vsftpd").campaign.counts_by_category()
        assert counts.get(RC.SILENT_IGNORANCE, 0) >= 4

    def test_every_vulnerability_has_code_location(self, evaluation):
        for res in evaluation.results():
            for vuln in res.campaign.vulnerabilities:
                assert vuln.code_location is not None


class TestStorageATraits:
    def test_initiator_name_case_functional_failure(self, evaluation):
        # Figure 1: an uppercase initiator name silently breaks lookup.
        campaign = evaluation.result("storage_a").campaign
        case_verdicts = [
            v
            for v in campaign.verdicts
            if v.misconfiguration.rule == "case-alteration"
            and v.misconfiguration.primary_param == "iscsi.initiator.name"
        ]
        assert case_verdicts
        assert (
            case_verdicts[0].reaction.category is RC.FUNCTIONAL_FAILURE
        )

    def test_log_filesize_overflow_silent(self, evaluation):
        # Figure 5(a): the overflowed number is silently stored/clamped.
        campaign = evaluation.result("storage_a").campaign
        overflow = [
            v
            for v in campaign.verdicts
            if v.misconfiguration.primary_param == "log.filesize"
            and v.misconfiguration.rule == "basic-type"
        ]
        assert any(
            v.reaction.category is RC.SILENT_VIOLATION for v in overflow
        )

    def test_custom_knowledge_gives_proprietary_units(self, evaluation):
        from repro.knowledge import SemanticType, Unit

        spex = evaluation.result("storage_a").spex
        semantics = {
            (c.param, c.semantic, c.unit)
            for c in spex.constraints.semantic_types()
        }
        # wafl_reserve / ontap_schedule_scrub imported via
        # custom_knowledge produced these:
        assert ("scrub.interval.hour", SemanticType.TIME, Unit.HOURS) in semantics
        assert ("wafl.cache.mb", SemanticType.SIZE, Unit.MEGABYTES) in semantics


class TestMysqlTraits:
    def test_history_size_zero_crashes_sigfpe(self, evaluation):
        campaign = evaluation.result("mysql").campaign
        crashes = [
            v
            for v in campaign.vulnerabilities
            if v.category is RC.CRASH_HANG
            and v.param == "performance_schema_events_waits_history_size"
        ]
        assert crashes

    def test_stopword_directory_crashes(self, evaluation):
        campaign = evaluation.result("mysql").campaign
        crashes = [
            v
            for v in campaign.vulnerabilities
            if v.category is RC.CRASH_HANG and v.param == "ft_stopword_file"
        ]
        assert crashes

    def test_ft_relation_violation_breaks_search_silently(self, evaluation):
        campaign = evaluation.result("mysql").campaign
        failures = [
            v
            for v in campaign.vulnerabilities
            if v.rule == "value-relationship"
            and v.category is RC.FUNCTIONAL_FAILURE
        ]
        assert failures


class TestSquidTraits:
    def test_icp_port_occupied_misleading_fatal(self, evaluation):
        campaign = evaluation.result("squid").campaign
        verdicts = [
            v
            for v in campaign.verdicts
            if v.misconfiguration.primary_param == "icp_port"
            and dict(v.misconfiguration.settings).get("icp_port") == "3130"
        ]
        assert verdicts
        verdict = verdicts[0]
        assert verdict.reaction.category is RC.EARLY_TERMINATION
        assert "Cannot open ICP Port" in verdict.log_excerpt

    def test_boolean_on_case_alteration_silently_off(self, evaluation):
        # buffered_logs uses strcmp: "ON" is silently off (Figure 6c).
        campaign = evaluation.result("squid").campaign
        verdicts = [
            v
            for v in campaign.verdicts
            if v.misconfiguration.primary_param == "buffered_logs"
            and v.misconfiguration.rule == "case-alteration"
        ]
        assert verdicts
        assert verdicts[0].reaction.category is RC.SILENT_VIOLATION
