"""Property-based tests (hypothesis) on core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.events import Labels
from repro.inject.ar import ConfigAR, DirectiveDialect, KeyValueDialect
from repro.lang import types as ct
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind
from repro.runtime.builtins import c_format
from repro.runtime.values import coerce

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,12}", fullmatch=True)
config_values = st.from_regex(r"[A-Za-z0-9_./:-]{1,16}", fullmatch=True)


class TestLexerProperties:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_decimal_integers_roundtrip(self, value):
        toks = tokenize(str(value))
        assert toks[0].kind is TokenKind.INT_LIT
        assert toks[0].value == value

    @given(identifiers)
    def test_identifiers_lex_whole(self, name):
        toks = tokenize(name)
        assert len(toks) == 2  # ident + EOF
        assert toks[0].text == name

    @given(st.text(alphabet=st.characters(blacklist_characters='"\\\n',
                                          min_codepoint=32, max_codepoint=126),
                   max_size=30))
    def test_string_literals_roundtrip(self, text):
        toks = tokenize(f'"{text}"')
        assert toks[0].kind is TokenKind.STRING_LIT
        assert toks[0].value == text


class TestIntegerSemantics:
    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_int32_wrap_is_congruent_mod_2_32(self, value):
        wrapped = coerce(ct.INT, value)
        assert (wrapped - value) % (2**32) == 0
        assert ct.INT.min_value <= wrapped <= ct.INT.max_value

    @given(st.integers(min_value=-(2**70), max_value=2**70))
    def test_wrap_idempotent(self, value):
        once = coerce(ct.INT, value)
        assert coerce(ct.INT, once) == once

    @given(st.integers(), st.integers(min_value=8, max_value=64).filter(
        lambda b: b in (8, 16, 32, 64)))
    def test_unsigned_wrap_nonnegative(self, value, bits):
        typ = ct.IntType(bits, signed=False)
        assert 0 <= typ.wrap(value) < 2**bits


class TestConfigArProperties:
    @settings(max_examples=50)
    @given(st.dictionaries(identifiers, config_values, min_size=1, max_size=8))
    def test_kv_roundtrip(self, entries):
        text = "".join(f"{k}={v}\n" for k, v in entries.items())
        ar = ConfigAR.parse(text, KeyValueDialect("="))
        reparsed = ConfigAR.parse(ar.serialize(), KeyValueDialect("="))
        for key, value in entries.items():
            assert reparsed.get(key) == value

    @settings(max_examples=50)
    @given(st.dictionaries(identifiers, config_values, min_size=1, max_size=8))
    def test_directive_roundtrip(self, entries):
        text = "".join(f"{k} {v}\n" for k, v in entries.items())
        ar = ConfigAR.parse(text, DirectiveDialect())
        reparsed = ConfigAR.parse(ar.serialize(), DirectiveDialect())
        for key, value in entries.items():
            assert reparsed.get(key) == value

    @settings(max_examples=50)
    @given(
        st.dictionaries(identifiers, config_values, min_size=1, max_size=6),
        identifiers,
        config_values,
    )
    def test_set_then_get(self, entries, key, value):
        text = "".join(f"{k}={v}\n" for k, v in entries.items())
        ar = ConfigAR.parse(text, KeyValueDialect("="))
        ar.set(key, value)
        assert ar.get(key) == value
        # Everything else is untouched.
        for other, other_value in entries.items():
            if other != key:
                assert ar.get(other) == other_value


class TestLabels:
    @given(st.dictionaries(identifiers, st.integers(0, 5), max_size=6),
           st.integers(0, 5))
    def test_within_hops_monotone(self, mapping, cut):
        labels = Labels.of(mapping)
        subset = labels.within_hops(cut)
        superset = labels.within_hops(cut + 1)
        assert subset <= superset
        assert superset <= labels.names()


class TestCFormat:
    @given(st.text(max_size=40), st.lists(
        st.one_of(st.integers(-(2**40), 2**40), st.text(max_size=10), st.none()),
        max_size=4,
    ))
    def test_never_raises(self, fmt, args):
        # Formatting untrusted config data must never take the tool down.
        out = c_format(fmt, args)
        assert isinstance(out, str)

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_decimal_faithful(self, value):
        assert c_format("%d", [value]) == str(value)
