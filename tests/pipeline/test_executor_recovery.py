"""Supervised execution (`map_resilient`): retry, watchdog timeouts,
quarantine — on the serial and thread executors.  Worker-death
recovery on the process executor lives in `test_worker_death.py`
(multicore-gated)."""

import threading

import pytest

from repro.chaos import ChaosError, ChaosSchedule
from repro.pipeline.executor import (
    SerialExecutor,
    ThreadExecutor,
    resolve_executor,
)
from repro.resilience import FailedShard, RetryPolicy

FAST = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.005)


class _FlakyOnce:
    """Fails each item's first invocation, succeeds afterwards.
    Thread-safe so the thread executor can share one instance."""

    def __init__(self, exc_factory=None):
        self._seen = set()
        self._lock = threading.Lock()
        self._exc_factory = exc_factory or (
            lambda item: RuntimeError(f"flaky {item}")
        )

    def __call__(self, item):
        with self._lock:
            first = item not in self._seen
            self._seen.add(item)
        if first:
            raise self._exc_factory(item)
        return item * 10


class TestSerialSupervision:
    def test_plain_success_needs_no_retries(self):
        result = SerialExecutor().map_resilient(
            lambda x: x + 1, [1, 2, 3], FAST
        )
        assert result.results == [2, 3, 4]
        assert result.ok and result.retries == 0

    def test_transient_failures_retry_to_success(self):
        result = SerialExecutor().map_resilient(
            _FlakyOnce(), [1, 2, 3], FAST, label="t"
        )
        assert result.results == [10, 20, 30]
        assert result.ok
        assert result.retries == 3  # one retry per item

    def test_persistent_failure_quarantines(self):
        def boom(item):
            raise ValueError(f"always bad: {item}")

        result = SerialExecutor().map_resilient(
            boom, ["a", "b"], FAST, label="q"
        )
        assert result.results == [None, None]
        assert not result.ok
        assert [f.label for f in result.failures] == ["q:0", "q:1"]
        for failure in result.failures:
            assert isinstance(failure, FailedShard)
            assert failure.attempts == FAST.max_attempts
            assert failure.error_kind == "ValueError"

    def test_quarantine_keeps_healthy_siblings(self):
        def half(item):
            if item % 2:
                raise RuntimeError("odd one out")
            return item

        result = SerialExecutor().map_resilient(
            half, [0, 1, 2, 3], FAST
        )
        assert result.results == [0, None, 2, None]
        assert result.completed() == [0, 2]
        assert [f.index for f in result.failures] == [1, 3]

    def test_chaos_faults_surface_as_chaos_error(self):
        chaos = ChaosSchedule(seed=0, error_rate=1.0)
        result = SerialExecutor().map_resilient(
            lambda x: x, [1], RetryPolicy(max_attempts=2, base_delay=0.001),
            chaos=chaos, label="c",
        )
        assert result.results == [None]
        assert result.failures[0].error_kind == "ChaosError"

    def test_chaos_retry_key_includes_attempt(self):
        # Find a seed whose error fires on attempt 1 but not attempt 2
        # of shard c:0 — the recovery path in one deterministic run.
        for seed in range(256):
            schedule = ChaosSchedule(seed=seed, error_rate=0.5)
            if schedule.should("error", "c:0|a1") and not schedule.should(
                "error", "c:0|a2"
            ):
                break
        else:  # pragma: no cover - 2^-256 unlucky
            pytest.fail("no seed found")
        result = SerialExecutor().map_resilient(
            lambda x: x * 2, [21], FAST, chaos=schedule, label="c"
        )
        assert result.results == [42]
        assert result.ok and result.retries == 1


class TestThreadSupervision:
    def test_transient_failures_retry_to_success(self):
        result = ThreadExecutor(max_workers=2).map_resilient(
            _FlakyOnce(), [1, 2, 3, 4], FAST, label="t"
        )
        assert result.results == [10, 20, 30, 40]
        assert result.ok
        assert result.retries >= 4

    def test_watchdog_timeout_recovers_on_retry(self):
        stalls = []
        lock = threading.Lock()

        def stall_first(item):
            with lock:
                first = not stalls
                stalls.append(item)
            if first:
                # Longer than the watchdog: the supervisor abandons
                # the pool; this thread finishes in the background and
                # its result is discarded.
                import time

                time.sleep(0.4)
            return item

        policy = RetryPolicy(
            max_attempts=3, base_delay=0.001, max_delay=0.005, timeout=0.1
        )
        result = ThreadExecutor(max_workers=1).map_resilient(
            stall_first, [7], policy, label="w"
        )
        assert result.results == [7]
        assert result.ok and result.retries == 1

    def test_watchdog_exhaustion_quarantines_as_timeout(self):
        def always_stall(item):
            import time

            time.sleep(0.3)
            return item

        policy = RetryPolicy(
            max_attempts=2, base_delay=0.001, max_delay=0.005, timeout=0.05
        )
        result = ThreadExecutor(max_workers=1).map_resilient(
            always_stall, [1], policy, label="w"
        )
        assert result.results == [None]
        assert result.failures[0].error_kind == "timeout"
        assert "watchdog" in result.failures[0].detail

    def test_shard_raised_timeout_error_is_a_failure_not_a_stall(self):
        # A shard *raising* TimeoutError is an organic failure: it must
        # count against the retry budget, not read as a watchdog blow.
        def raises_timeout(item):
            raise TimeoutError("the shard itself timed out")

        policy = RetryPolicy(
            max_attempts=2, base_delay=0.001, max_delay=0.005, timeout=5.0
        )
        result = ThreadExecutor(max_workers=1).map_resilient(
            raises_timeout, [1], policy
        )
        assert result.failures[0].error_kind == "TimeoutError"
        assert result.failures[0].detail == "shard raised"


class TestResilienceCounters:
    def test_retries_and_quarantines_are_counted(self):
        from repro.obs import get_registry

        registry = get_registry()
        before = registry.snapshot()["counters"]

        def boom(item):
            raise RuntimeError("x")

        SerialExecutor().map_resilient(
            boom, [1], RetryPolicy(max_attempts=2, base_delay=0.001)
        )
        after = registry.snapshot()["counters"]

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("resilience.retries") == 1
        assert delta("resilience.quarantined") == 1
        assert delta("resilience.shard_failures") == 2


class TestResolveStillWorks:
    @pytest.mark.parametrize("name", ["serial", "thread"])
    def test_every_executor_exposes_map_resilient(self, name):
        executor = resolve_executor(name, 2)
        result = executor.map_resilient(lambda x: -x, [1, 2], FAST)
        assert result.results == [-1, -2]
