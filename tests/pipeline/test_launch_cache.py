"""Launch-cache semantics: key sensitivity, hit/miss accounting,
snapshot slimming, and campaign parity with and without the cache
under all three executors."""

import pytest

from repro.inject.campaign import Campaign
from repro.inject.harness import InjectionHarness
from repro.pipeline import CampaignPipeline, LaunchCache, launch_fingerprint
from repro.runtime.interpreter import InterpreterOptions
from repro.systems import get_system


class TestLaunchFingerprint:
    def test_stable(self):
        assert launch_fingerprint(
            "sys", "a = 1\n", ("GET",), "opts"
        ) == launch_fingerprint("sys", "a = 1\n", ("GET",), "opts")

    def test_config_text_changes_key(self):
        assert launch_fingerprint("sys", "a = 1\n") != launch_fingerprint(
            "sys", "a = 2\n"
        )

    def test_requests_change_key(self):
        base = launch_fingerprint("sys", "c", ("GET",))
        assert base != launch_fingerprint("sys", "c", ())
        assert base != launch_fingerprint("sys", "c", ("GET", "GET"))
        assert base != launch_fingerprint("sys", "c", ("PUT",))

    def test_request_split_does_not_collide(self):
        # ("ab", "c") and ("a", "bc") must hash differently.
        assert launch_fingerprint("sys", "c", ("ab", "c")) != launch_fingerprint(
            "sys", "c", ("a", "bc")
        )

    def test_system_and_options_change_key(self):
        assert launch_fingerprint("a", "c") != launch_fingerprint("b", "c")
        assert launch_fingerprint(
            "a", "c", (), InterpreterOptions().fingerprint()
        ) != launch_fingerprint(
            "a", "c", (), InterpreterOptions(max_steps=7).fingerprint()
        )

    def test_interpreter_options_fingerprint_is_hex(self):
        fingerprint = InterpreterOptions().fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # raises if not hex


class TestHarnessLaunchCaching:
    @pytest.fixture()
    def harness(self):
        return InjectionHarness(get_system("openldap"), launch_cache=LaunchCache())

    def test_identical_launches_share_one_run(self, harness):
        config = harness.system.default_config
        first = harness.launch(config)
        second = harness.launch(config)
        assert second is first
        assert harness.launch_cache.stats.misses == 1
        assert harness.launch_cache.stats.hits == 1

    def test_different_requests_are_distinct_entries(self, harness):
        config = harness.system.default_config
        startup = harness.launch(config)
        ping = harness.launch(config, ["PING"])
        assert ping is not startup
        assert harness.launch_cache.stats.misses == 2

    def test_startup_snapshot_kept_request_runs_slimmed(self, harness):
        config = harness.system.default_config
        startup = harness.launch(config)
        request_run = harness.launch(config, ["PING"])
        # Silent-violation checks read startup snapshots; request runs
        # are slimmed before caching to bound the cache's footprint.
        assert startup.interpreter is not None
        assert request_run.interpreter is None

    def test_uncached_harness_reruns_every_launch(self):
        harness = InjectionHarness(get_system("openldap"))
        config = harness.system.default_config
        assert harness.launch(config) is not harness.launch(config)

    def test_repeated_baseline_served_from_cache(self, harness):
        assert harness.baseline_ok()
        misses = harness.launch_cache.stats.misses
        assert harness.baseline_ok()
        assert harness.launch_cache.stats.misses == misses
        assert harness.launch_cache.stats.hits >= misses


class TestCampaignLaunchCacheParity:
    @pytest.fixture(scope="class")
    def system(self):
        return get_system("openldap")

    @pytest.fixture(scope="class")
    def spex_report(self, system):
        return Campaign(system).run_spex()

    @pytest.fixture(scope="class")
    def reference(self, system, spex_report):
        # The no-cache serial loop: the semantics every cached or
        # parallel variant must reproduce bit-identically.
        return Campaign(system).run(spex_report)

    def _assert_equal_reports(self, report, reference):
        assert set(report.vulnerabilities) == set(reference.vulnerabilities)
        assert report.vulnerabilities == reference.vulnerabilities
        assert [v.reaction for v in report.verdicts] == [
            v.reaction for v in reference.verdicts
        ]
        assert (
            report.misconfigurations_tested
            == reference.misconfigurations_tested
        )

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_cached_campaign_matches_uncached_serial(
        self, system, spex_report, reference, executor
    ):
        cache = LaunchCache()
        report = Campaign(
            system, executor=executor, max_workers=2, launch_cache=cache
        ).run(spex_report)
        self._assert_equal_reports(report, reference)
        assert cache.stats.misses > 0

    def test_process_sharding_honours_disabled_cache(
        self, system, spex_report, reference
    ):
        # launch_cache=None disables caching even inside process
        # workers; results are still bit-identical.
        report = Campaign(system, executor="process", max_workers=2).run(
            spex_report
        )
        self._assert_equal_reports(report, reference)

    def test_warm_rerun_is_all_hits(self, system, spex_report, reference):
        cache = LaunchCache()
        Campaign(system, launch_cache=cache).run(spex_report)
        cold = cache.stats.snapshot()
        rerun = Campaign(system, launch_cache=cache).run(spex_report)
        self._assert_equal_reports(rerun, reference)
        assert cache.stats.misses == cold["misses"]  # nothing re-launched
        assert cache.stats.hits >= cold["misses"]

    def test_pipeline_surfaces_launch_stats(self):
        pipeline = CampaignPipeline(
            systems=["openldap"], reuse_campaigns=False
        )
        pipeline.run()
        warm = pipeline.run()
        launches = warm.cache_stats["launches"]
        assert launches["hits"] > 0
        assert warm.summary_dict()["cache_stats"]["launches"] == launches


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
