"""Inference-cache semantics: hits, misses, invalidation, and key
sensitivity to every component of the content fingerprint."""

import json

import pytest

from repro.core import SpexOptions
from repro.inject.campaign import Campaign
from repro.pipeline import (
    InferenceCache,
    PipelineCaches,
    campaign_fingerprint,
    spex_fingerprint,
)
from repro.systems import get_system

SOURCES = {"a.c": "int main() { return 0; }\n"}
ANNOTATIONS = "{ @STRUCT = options }"


class TestSpexFingerprint:
    def test_stable(self):
        assert spex_fingerprint(
            SOURCES, ANNOTATIONS, SpexOptions()
        ) == spex_fingerprint(SOURCES, ANNOTATIONS, SpexOptions())

    def test_default_options_key_matches_explicit(self):
        assert spex_fingerprint(SOURCES, ANNOTATIONS) == spex_fingerprint(
            SOURCES, ANNOTATIONS, SpexOptions()
        )

    def test_source_order_irrelevant(self):
        two = {"a.c": "int x;", "b.c": "int y;"}
        reordered = dict(reversed(list(two.items())))
        assert spex_fingerprint(two, "") == spex_fingerprint(reordered, "")

    def test_changed_source_changes_key(self):
        other = {"a.c": "int main() { return 1; }\n"}
        assert spex_fingerprint(SOURCES, ANNOTATIONS) != spex_fingerprint(
            other, ANNOTATIONS
        )

    def test_changed_annotations_change_key(self):
        assert spex_fingerprint(SOURCES, ANNOTATIONS) != spex_fingerprint(
            SOURCES, ANNOTATIONS + " "
        )

    def test_changed_options_change_key(self):
        ablated = SpexOptions(enable_value_rels=False)
        assert spex_fingerprint(
            SOURCES, ANNOTATIONS, SpexOptions()
        ) != spex_fingerprint(SOURCES, ANNOTATIONS, ablated)

    def test_nested_taint_options_change_key(self):
        deeper = SpexOptions()
        deeper.taint.max_rounds += 1
        assert spex_fingerprint(
            SOURCES, ANNOTATIONS, SpexOptions()
        ) != spex_fingerprint(SOURCES, ANNOTATIONS, deeper)


class TestCampaignFingerprint:
    def test_rule_roster_matters(self):
        key = spex_fingerprint(SOURCES, ANNOTATIONS)
        assert campaign_fingerprint(key, ["a", "b"]) != campaign_fingerprint(
            key, ["a"]
        )

    def test_rule_order_irrelevant(self):
        key = spex_fingerprint(SOURCES, ANNOTATIONS)
        assert campaign_fingerprint(key, ["a", "b"]) == campaign_fingerprint(
            key, ["b", "a"]
        )

    def test_same_named_subclass_changes_roster(self):
        """A plug-in that keeps its rule name but changes behaviour
        (a subclass) must not reuse the stock roster's cache key."""
        from repro.inject.generators import (
            BasicTypeViolationPlugin,
            default_generators,
        )

        class Variant(BasicTypeViolationPlugin):
            pass

        stock = default_generators()
        modified = default_generators()
        modified.plugins[0] = Variant()
        assert stock.rule_names() == modified.rule_names()
        assert stock.roster() != modified.roster()
        key = spex_fingerprint(SOURCES, ANNOTATIONS)
        assert campaign_fingerprint(
            key, stock.roster()
        ) != campaign_fingerprint(key, modified.roster())


class TestInferenceCache:
    def test_miss_then_hit(self):
        cache = InferenceCache()
        system = get_system("apache")
        campaign = Campaign(system, inference_cache=cache)
        first = campaign.run_spex()
        second = campaign.run_spex()
        assert second is first  # served from cache, not re-inferred
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_changed_options_miss(self):
        cache = InferenceCache()
        system = get_system("apache")
        Campaign(system, inference_cache=cache).run_spex()
        ablated = SpexOptions(enable_control_deps=False)
        report = Campaign(
            system, spex_options=ablated, inference_cache=cache
        ).run_spex()
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0
        assert not report.constraints.control_deps()
        assert len(cache) == 2

    def test_invalidate_forces_recompute(self):
        cache = InferenceCache()
        system = get_system("apache")
        campaign = Campaign(system, inference_cache=cache)
        first = campaign.run_spex()
        key = cache.key_for(system, campaign.spex_options)
        assert cache.invalidate(key)
        assert not cache.invalidate(key)  # already gone
        second = campaign.run_spex()
        assert second is not first
        assert cache.stats.invalidations == 1
        assert cache.stats.misses == 2

    def test_clear_counts_invalidations(self):
        cache = InferenceCache()
        cache.put("k1", object())
        cache.put("k2", object())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 2


class TestReportSerialization:
    def test_summary_dict_is_json_able(self):
        system = get_system("apache")
        report = Campaign(system).run_spex()
        summary = report.summary_dict()
        decoded = json.loads(json.dumps(summary))
        assert decoded["system"] == "apache"
        assert decoded["parameters"] == sorted(report.parameters)
        assert decoded["constraint_counts"] == report.constraint_counts()
        assert len(decoded["constraints"]) == len(report.constraints)


class TestSnapshotCache:
    def test_fingerprint_covers_system_config_and_options(self):
        from repro.pipeline.cache import snapshot_fingerprint

        base = snapshot_fingerprint("vsftpd", "listen=YES\n", "opts-a")
        assert base == snapshot_fingerprint("vsftpd", "listen=YES\n", "opts-a")
        assert base != snapshot_fingerprint("apache", "listen=YES\n", "opts-a")
        assert base != snapshot_fingerprint("vsftpd", "listen=NO\n", "opts-a")
        assert base != snapshot_fingerprint("vsftpd", "listen=YES\n", "opts-b")
        assert base != snapshot_fingerprint(
            "vsftpd", "listen=YES\n", "opts-a", argv=("vsftpd", "/etc/alt")
        )

    def test_record_for_returns_one_record_per_key(self):
        from repro.pipeline.cache import SnapshotCache

        cache = SnapshotCache()
        record = cache.record_for("k1")
        assert cache.record_for("k1") is record
        assert cache.record_for("k2") is not record
        assert not record.probed

    def test_hints_shared_per_system_and_options(self):
        from repro.pipeline.cache import SnapshotCache

        cache = SnapshotCache()
        hint = cache.hint_for("vsftpd", "fp")
        assert cache.hint_for("vsftpd", "fp") is hint
        assert cache.hint_for("vsftpd", "other-fp") is not hint
        assert hint.index is None

    def test_boot_stats_absorb(self):
        from repro.pipeline.cache import SnapshotCache

        cache = SnapshotCache()
        cache.absorb_boot_stats({"resumes": 3, "boots": 2, "captures": 1})
        assert cache.boot_stats.snapshot() == {
            "resumes": 3,
            "boots": 2,
            "captures": 1,
        }


class TestPipelineCaches:
    def test_stats_shape(self):
        caches = PipelineCaches()
        stats = caches.stats()
        assert set(stats) == {
            "inference",
            "campaigns",
            "launches",
            "checkers",
            "snapshots",
        }
        assert stats["inference"] == {
            "hits": 0,
            "misses": 0,
            "invalidations": 0,
            "peeks": 0,
        }
        assert stats["snapshots"] == {
            "resumes": 0,
            "boots": 0,
            "captures": 0,
        }

    def test_options_fingerprint_is_hex(self):
        fingerprint = SpexOptions().fingerprint()
        assert len(fingerprint) == 64
        int(fingerprint, 16)  # raises if not hex


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
