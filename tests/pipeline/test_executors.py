"""Executor behaviour and cross-executor campaign parity."""

import pytest

from repro.inject.campaign import Campaign
from repro.inject.generators import GeneratorPlugin, default_generators
from repro.pipeline import (
    CampaignPipeline,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    executor_names,
    resolve_executor,
)
from repro.systems import get_system
from repro.systems.registry import (
    clear_instance_cache,
    is_registered,
    iter_systems,
    load_all,
)

SUBSET = ["apache", "openldap"]


class TestResolveExecutor:
    def test_by_name(self):
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        assert isinstance(resolve_executor("thread"), ThreadExecutor)
        assert isinstance(resolve_executor("process"), ProcessExecutor)

    def test_instance_passthrough(self):
        executor = ThreadExecutor(max_workers=3)
        assert resolve_executor(executor) is executor

    def test_worker_override(self):
        assert resolve_executor("thread", 5).max_workers == 5

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu")

    def test_names_listing(self):
        assert set(executor_names()) == {"serial", "thread", "process"}


class TestMapSemantics:
    @pytest.mark.parametrize("name", ["serial", "thread", "process"])
    def test_order_preserved(self, name):
        executor = resolve_executor(name, 4)
        assert executor.map(abs, [-3, -1, -2, -5]) == [3, 1, 2, 5]

    def test_empty(self):
        assert resolve_executor("thread").map(abs, []) == []


class TestRegistryBulkApi:
    def test_iter_subset_preserves_order(self):
        names = [s.name for s in iter_systems(["openldap", "apache"])]
        assert names == ["openldap", "apache"]

    def test_iter_unknown_raises_before_work(self):
        with pytest.raises(KeyError, match="no_such_system"):
            list(iter_systems(["no_such_system"]))

    def test_load_all(self):
        systems = load_all()
        assert set(systems) == {
            "apache", "mysql", "nginx", "openldap", "postgresql",
            "squid", "storage_a", "vsftpd",
        }
        assert all(name == s.name for name, s in systems.items())

    def test_is_registered(self):
        assert is_registered("squid")
        assert is_registered("nginx")
        assert not is_registered("lighttpd")

    def test_clear_instance_cache(self):
        before = get_system("apache")
        clear_instance_cache()
        after = get_system("apache")
        assert after is not before
        assert after.name == before.name

    def test_clear_invalidates_memos_on_held_instances(self):
        # Regression: clear_instance_cache() used to drop only the
        # registry's name->instance map, leaving the program() memo
        # alive on instances callers already held - a later sources
        # mutation (the reason one clears) kept serving the stale
        # parse.  The contract now is that the clear also invalidates
        # derived memos on every instance handed out so far.
        held = load_all()["vsftpd"]
        stale = held.program()
        assert held.program() is stale  # memoized while cached
        clear_instance_cache()
        fresh = held.program()
        assert fresh is not stale  # re-parsed, not served from memo
        # The held object stays fully usable: the re-parse reflects
        # its (unchanged) sources, so derived facts agree.
        assert fresh.count_code_lines() == stale.count_code_lines()
        assert load_all()["vsftpd"] is not held


class TestPipelineParity:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return CampaignPipeline(systems=SUBSET).run()

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_identical_vulnerability_sets(self, serial_report, executor):
        report = CampaignPipeline(
            systems=SUBSET, executor=executor, max_workers=2
        ).run()
        assert report.executor == executor
        assert (
            report.vulnerability_sets() == serial_report.vulnerability_sets()
        )
        assert (
            report.total_misconfigurations()
            == serial_report.total_misconfigurations()
        )

    def test_single_system_campaign_is_thin_wrapper(self, serial_report):
        """A direct Campaign run and a one-system pipeline run agree."""
        direct = Campaign(get_system("apache")).run()
        via_pipeline = serial_report.report_for("apache")
        assert set(direct.vulnerabilities) == set(
            via_pipeline.vulnerabilities
        )
        assert (
            direct.misconfigurations_tested
            == via_pipeline.misconfigurations_tested
        )


class TestPipelineCaching:
    def test_warm_rerun_served_from_cache(self):
        pipeline = CampaignPipeline(systems=["apache"])
        cold = pipeline.run()
        warm = pipeline.run()
        assert cold.cached_count() == 0
        assert warm.cached_count() == 1
        assert warm.runs[0].report is cold.runs[0].report

    def test_reuse_disabled_still_caches_inference(self):
        pipeline = CampaignPipeline(systems=["apache"], reuse_campaigns=False)
        first = pipeline.run()
        second = pipeline.run()
        assert second.cached_count() == 0
        assert second.runs[0].report is not first.runs[0].report
        assert pipeline.caches.inference.stats.hits >= 1
        assert second.vulnerability_sets() == first.vulnerability_sets()

    def test_executor_override_per_run(self):
        pipeline = CampaignPipeline(systems=["apache"])
        report = pipeline.run(executor="thread")
        assert report.executor == "thread"

    def test_report_aggregates(self):
        report = CampaignPipeline(systems=SUBSET).run()
        assert report.total_vulnerabilities() == sum(
            r.report.total() for r in report.runs
        )
        assert sum(report.counts_by_category().values()) == (
            report.total_vulnerabilities()
        )
        summary = report.summary_dict()
        assert [s["name"] for s in summary["systems"]] == SUBSET
        with pytest.raises(KeyError):
            report.report_for("mysql")


class TestProcessExecutorGuards:
    def test_custom_generators_rejected(self):
        class NullPlugin(GeneratorPlugin):
            rule_name = "null"

            def applies_to(self, constraint):
                return False

            def generate(self, constraint, template):
                return []

        generators = default_generators()
        generators.add(NullPlugin())
        pipeline = CampaignPipeline(
            systems=["apache"], generators=generators, executor="process"
        )
        with pytest.raises(ValueError, match="process executor"):
            pipeline.run()
        # The same roster is fine on an in-process executor.
        report = pipeline.run(executor="serial")
        assert report.total_vulnerabilities() > 0

    def test_custom_generators_rejected_for_batch_process_upfront(self):
        class NullPlugin(GeneratorPlugin):
            rule_name = "null"

            def applies_to(self, constraint):
                return False

            def generate(self, constraint, template):
                return []

        generators = default_generators()
        generators.add(NullPlugin())
        pipeline = CampaignPipeline(
            systems=["apache"],
            generators=generators,
            executor="serial",
            batch_executor="process",
        )
        # Rejected before any campaign runs, not by the first
        # multi-batch campaign mid-sweep.
        with pytest.raises(ValueError, match="process executor"):
            pipeline.run()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
