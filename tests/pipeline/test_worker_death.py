"""Process-executor worker death: a SIGKILL'd worker mid-shard must
become a structured retry (and, when the budget runs out, a
`FailedShard`) instead of an opaque `BrokenProcessPool` crash.

Multicore-gated like the other process-pool tiers: on one core the
fork + supervision rounds cost more than they prove.
"""

import os
import signal
from pathlib import Path

import pytest

from repro.chaos import ChaosSchedule
from repro.pipeline.executor import ProcessExecutor
from repro.resilience import RetryPolicy

MULTICORE = (os.cpu_count() or 1) >= 2
pytestmark = pytest.mark.skipif(
    not MULTICORE, reason="process worker-death tier needs >= 2 cores"
)

FAST = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.005)


def _die_once(item):
    """SIGKILL this worker the first time each item is seen; succeed
    on the retry.  The sentinel file is the cross-process 'seen' bit —
    written *before* the kill so the retry observes it."""
    value, sentinel = item
    path = Path(sentinel)
    if not path.exists():
        path.write_bytes(b"died")
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 10


def _echo(item):
    return item


class TestWorkerDeathRecovery:
    def test_sigkill_mid_shard_retries_to_success(self, tmp_path):
        items = [(i, str(tmp_path / f"s{i}")) for i in range(2)]
        result = ProcessExecutor(max_workers=2).map_resilient(
            _die_once, items, FAST, label="kill"
        )
        assert result.results == [0, 10]
        assert result.ok
        # Every shard of the broken pool pays one attempt, so at least
        # the two killed shards were retried.
        assert result.retries >= 2

    def test_sigkill_is_counted_as_a_worker_crash(self, tmp_path):
        from repro.obs import get_registry

        registry = get_registry()
        before = registry.snapshot()["counters"].get(
            "resilience.worker_crashes", 0
        )
        items = [(1, str(tmp_path / "crash"))]
        result = ProcessExecutor(max_workers=1).map_resilient(
            _die_once, items, FAST, label="kill"
        )
        assert result.ok
        after = registry.snapshot()["counters"].get(
            "resilience.worker_crashes", 0
        )
        assert after > before

    def test_chaos_kill_exhaustion_quarantines_structurally(self):
        # Every attempt dies: the opaque BrokenProcessPool becomes a
        # structured quarantine record, and the run returns.
        chaos = ChaosSchedule(seed=1, kill_rate=1.0)
        policy = RetryPolicy(max_attempts=2, base_delay=0.001)
        result = ProcessExecutor(max_workers=2).map_resilient(
            _echo, [5, 6], policy, chaos=chaos, label="doom"
        )
        assert result.results == [None, None]
        assert len(result.failures) == 2
        for failure in result.failures:
            assert failure.attempts == 2
            assert failure.error_kind == "BrokenProcessPool"

    def test_healthy_siblings_survive_a_killed_worker(self, tmp_path):
        # One shard SIGKILLs its worker; the pool is poisoned for that
        # round, but the supervisor's next round completes everyone.
        items = [(i, str(tmp_path / f"mix{i}")) for i in range(4)]
        # Pre-mark items 0 and 2 as already seen: they never die.
        Path(items[0][1]).write_bytes(b"ok")
        Path(items[2][1]).write_bytes(b"ok")
        result = ProcessExecutor(max_workers=2).map_resilient(
            _die_once, items, FAST, label="mix"
        )
        assert result.results == [0, 10, 20, 30]
        assert result.ok
