"""Thread-contention tests for the pipeline cache layers.

The serve tier (and before it, thread-executor campaigns) hammers one
shared `PipelineCaches` from many threads at once; these tests pin
down the locking contracts that the service's correctness rests on:
counters never tear, `__len__`/`__contains__` take the lock (the PR 2
fix), `get_or_compute` never hands two callers different values for
one key, and `SnapshotCache`'s record/hint registries return one
instance per key no matter how many threads race on first use.
"""

import threading
import time

from repro.pipeline.cache import (
    CacheStats,
    ContentCache,
    PipelineCaches,
    SnapshotCache,
)

THREADS = 8
ROUNDS = 200


def _hammer(worker, threads=THREADS):
    """Start-gate N workers so they really contend, then join them."""
    gate = threading.Barrier(threads)
    errors = []

    def wrapped(index):
        try:
            gate.wait()
            worker(index)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert errors == []


class TestContentCacheContention:
    def test_get_or_compute_returns_one_value_per_key(self):
        cache = ContentCache()
        seen: dict[str, set[int]] = {f"k{i}": set() for i in range(4)}
        lock = threading.Lock()

        def worker(index):
            for round_ in range(ROUNDS):
                key = f"k{round_ % 4}"
                value = cache.get_or_compute(key, lambda: object())
                with lock:
                    seen[key].add(id(value))

        _hammer(worker)
        # Racing factories may *build* duplicates, but every caller
        # must observe a single winning instance per key.
        assert all(len(ids) == 1 for ids in seen.values())
        assert len(cache) == 4

    def test_stats_counters_are_consistent(self):
        cache = ContentCache()
        operations = THREADS * ROUNDS

        def worker(index):
            for round_ in range(ROUNDS):
                cache.get_or_compute(f"k{round_ % 16}", lambda: round_)

        _hammer(worker)
        stats = cache.stats
        assert stats.hits + stats.misses == operations
        assert stats.misses >= 16  # at least one miss per key
        assert len(cache) == 16

    def test_get_put_invalidate_storm(self):
        cache = ContentCache()

        def worker(index):
            for round_ in range(ROUNDS):
                key = f"k{(index + round_) % 8}"
                cache.put(key, (index, round_))
                cache.get(key)
                if round_ % 16 == 0:
                    cache.invalidate(key)

        _hammer(worker)
        stats = cache.stats
        assert stats.hits + stats.misses == THREADS * ROUNDS
        assert stats.invalidations > 0
        assert len(cache) <= 8

    def test_len_and_contains_under_writer_churn(self):
        """The PR 2 fix: len()/containment lock against concurrent
        dict mutation instead of reading a resizing dict."""
        cache = ContentCache()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                cache.put(f"w{i % 512}", i)
                if i % 64 == 0:
                    cache.clear()
                i += 1

        churn = threading.Thread(target=writer)
        churn.start()
        try:
            deadline = time.monotonic() + 0.5
            while time.monotonic() < deadline:
                count = len(cache)
                assert 0 <= count <= 512
                assert isinstance("w0" in cache, bool)
        finally:
            stop.set()
            churn.join()

    def test_absorb_stats_sums_exactly(self):
        cache = ContentCache()

        def worker(index):
            for _ in range(ROUNDS):
                cache.absorb_stats({"hits": 1, "misses": 2})

        _hammer(worker)
        assert cache.stats.hits == THREADS * ROUNDS
        assert cache.stats.misses == 2 * THREADS * ROUNDS

    def test_peek_does_not_touch_counters_under_load(self):
        cache = ContentCache()
        cache.put("k", "v")

        def worker(index):
            for _ in range(ROUNDS):
                assert cache.peek("k") == "v"

        _hammer(worker)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0


class TestSnapshotCacheContention:
    def test_record_for_returns_one_record_per_key(self):
        cache = SnapshotCache()
        seen: dict[str, set[int]] = {}
        lock = threading.Lock()

        def worker(index):
            for round_ in range(ROUNDS):
                key = f"boot{round_ % 8}"
                record = cache.record_for(key)
                with lock:
                    seen.setdefault(key, set()).add(id(record))

        _hammer(worker)
        assert all(len(ids) == 1 for ids in seen.values())
        assert len(cache) == 8

    def test_hint_for_returns_one_hint_per_key(self):
        cache = SnapshotCache()
        seen: set[int] = set()
        lock = threading.Lock()

        def worker(index):
            for round_ in range(ROUNDS):
                hint = cache.hint_for("mysql", f"fp{round_ % 4}")
                with lock:
                    seen.add(id(hint))

        _hammer(worker)
        assert len(seen) == 4

    def test_absorb_boot_stats_sums_exactly(self):
        cache = SnapshotCache()

        def worker(index):
            for _ in range(ROUNDS):
                cache.absorb_boot_stats({"boots": 1, "resumes": 3})

        _hammer(worker)
        snapshot = cache.boot_stats.snapshot()
        assert snapshot["boots"] == THREADS * ROUNDS
        assert snapshot["resumes"] == 3 * THREADS * ROUNDS


class TestPipelineCachesContention:
    def test_stats_snapshot_under_concurrent_mutation(self):
        caches = PipelineCaches()

        def worker(index):
            for round_ in range(ROUNDS):
                caches.checkers.get_or_compute(
                    f"c{round_ % 8}", lambda: round_
                )
                caches.launches.put(f"l{round_ % 8}", round_)
                caches.snapshots.record_for(f"s{round_ % 8}")
                stats = caches.stats()
                assert set(stats) == {
                    "inference",
                    "campaigns",
                    "launches",
                    "checkers",
                    "snapshots",
                }

        _hammer(worker)
        checkers = caches.checkers.stats
        assert checkers.hits + checkers.misses == THREADS * ROUNDS

    def test_shared_caches_between_services_count_once(self):
        """Two consumers sharing one `PipelineCaches` see one compile
        (the serve warm-up contract: N services, one checker build)."""
        caches = PipelineCaches()
        builds = []

        def build():
            builds.append(1)
            return object()

        def worker(index):
            for _ in range(ROUNDS):
                caches.checkers.get_or_compute("one-key", build)

        _hammer(worker)
        # Duplicated builds are allowed only for the first racing wave
        # (factories run outside the lock); the stored value is unique.
        value = caches.checkers.peek("one-key")
        assert value is caches.checkers.peek("one-key")
        assert len(builds) <= THREADS
