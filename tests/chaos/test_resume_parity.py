"""The chaos tier's core acceptance claim: with seeded faults
injected, fleet and pipeline runs either recover in place (retry) or
resume from checkpoints after a kill — and the final reports
(verdicts, Vulnerability sets, PrecisionRecall, diagnostics) are
bit-identical to a fault-free run."""

import pytest

from repro.chaos import ChaosError, ChaosSchedule
from repro.checker import run_fleet
from repro.obs import get_registry
from repro.pipeline import CampaignPipeline, PipelineCaches
from repro.resilience import CheckpointStore, RetryPolicy

FLEET_SYSTEMS = ["mysql", "vsftpd"]
SIZE = 48
CHUNK = 16  # 3 chunks per system -> 6 shards
SEED = 5

PIPE_SYSTEMS = ["storage_a", "vsftpd"]

POLICY = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01)


def _counter_delta(before: dict, name: str) -> int:
    counters = get_registry().snapshot()["counters"]
    return counters.get(name, 0) - before.get(name, 0)


def _counters() -> dict:
    return dict(get_registry().snapshot()["counters"])


def _find_seed(predicate) -> ChaosSchedule:
    """The first schedule seed satisfying `predicate` — deterministic,
    so the test exercises a known fault pattern instead of dice."""
    for seed in range(512):
        schedule = ChaosSchedule(seed=seed, error_rate=0.3)
        if predicate(schedule):
            return schedule
    pytest.fail("no chaos seed found")  # pragma: no cover


# -- fleet ---------------------------------------------------------------------


def _fleet_view(report) -> dict:
    """Everything a fleet report *claims*, minus wall-clock noise."""
    view = report.summary_dict()
    for key in ("wall_time", "throughput", "cache_stats"):
        view.pop(key)
    for row in view["systems"]:
        row.pop("duration")
        row.pop("checker_from_cache")
    return view


@pytest.fixture(scope="module")
def caches():
    return PipelineCaches()


@pytest.fixture(scope="module")
def fleet_baseline(caches):
    return run_fleet(
        systems=FLEET_SYSTEMS,
        size=SIZE,
        seed=SEED,
        chunk_size=CHUNK,
        caches=caches,
    )


class TestFleetRecovery:
    def test_retry_recovery_is_bit_identical(self, caches, fleet_baseline):
        # A schedule that faults at least one shard's first attempt
        # but can never exhaust the 4-attempt budget.
        def recoverable(schedule):
            fired = [
                schedule.should("error", f"fleet:{i}|a1") for i in range(6)
            ]
            exhaustible = any(
                all(
                    schedule.should("error", f"fleet:{i}|a{a}")
                    for a in range(1, POLICY.max_attempts + 1)
                )
                for i in range(6)
            )
            return any(fired) and not exhaustible

        schedule = _find_seed(recoverable)
        before = _counters()
        report = run_fleet(
            systems=FLEET_SYSTEMS,
            size=SIZE,
            seed=SEED,
            chunk_size=CHUNK,
            caches=caches,
            retry_policy=POLICY,
            chaos=schedule,
        )
        assert report.failed_shards == []
        assert _counter_delta(before, "resilience.retries") >= 1
        assert _fleet_view(report) == _fleet_view(fleet_baseline)

    def test_kill_and_resume_is_bit_identical(
        self, caches, fleet_baseline, tmp_path
    ):
        # No retry budget: the first fired fault kills the run the way
        # a SIGKILL would, after some chunks already checkpointed.
        def aborts_midway(schedule):
            fired = [
                schedule.should("error", f"fleet:{i}|a1") for i in range(6)
            ]
            return not fired[0] and any(fired[1:])

        schedule = _find_seed(aborts_midway)
        store = CheckpointStore(tmp_path / "fleet")
        before = _counters()
        with pytest.raises(ChaosError):
            run_fleet(
                systems=FLEET_SYSTEMS,
                size=SIZE,
                seed=SEED,
                chunk_size=CHUNK,
                caches=caches,
                chaos=schedule,
                checkpoint=store,
            )
        saves = _counter_delta(before, "resilience.checkpoint_saves")
        assert saves >= 1  # progress survived the kill

        # Resume fault-free: restored chunks fold with fresh ones.
        before = _counters()
        resumed = run_fleet(
            systems=FLEET_SYSTEMS,
            size=SIZE,
            seed=SEED,
            chunk_size=CHUNK,
            caches=caches,
            checkpoint=store,
        )
        assert _counter_delta(before, "resilience.checkpoint_hits") == saves
        assert _fleet_view(resumed) == _fleet_view(fleet_baseline)

    def test_different_spec_never_reads_stale_checkpoints(
        self, caches, tmp_path
    ):
        store = CheckpointStore(tmp_path / "fleet-spec")
        run_fleet(
            systems=FLEET_SYSTEMS,
            size=SIZE,
            seed=SEED,
            chunk_size=CHUNK,
            caches=caches,
            checkpoint=store,
        )
        before = _counters()
        other = run_fleet(
            systems=FLEET_SYSTEMS,
            size=SIZE,
            seed=SEED + 1,  # different corpus -> different run key
            chunk_size=CHUNK,
            caches=caches,
            checkpoint=store,
        )
        assert _counter_delta(before, "resilience.checkpoint_hits") == 0
        assert other.seed == SEED + 1

    def test_exhausted_shards_quarantine_instead_of_aborting(self, caches):
        report = run_fleet(
            systems=FLEET_SYSTEMS,
            size=SIZE,
            seed=SEED,
            chunk_size=CHUNK,
            caches=caches,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001),
            chaos=ChaosSchedule(seed=0, error_rate=1.0),
        )
        # Every chunk died twice: the run still returns, structurally.
        assert len(report.failed_shards) == 6
        labels = {f.label for f in report.failed_shards}
        assert labels == {
            f"{name}:{start}:{CHUNK}"
            for name in FLEET_SYSTEMS
            for start in range(0, SIZE, CHUNK)
        }
        for failure in report.failed_shards:
            assert failure.error_kind == "ChaosError"
        assert report.total_configs == 0


# -- pipeline ------------------------------------------------------------------


def _pipeline_view(report) -> dict:
    view = report.summary_dict()
    view.pop("wall_time")
    view.pop("cache_stats")
    for row in view["systems"]:
        row.pop("duration")
        row.pop("from_cache")
        row.pop("from_checkpoint")
    return view


def _make_pipeline(caches, **kwargs) -> CampaignPipeline:
    # reuse_campaigns=False keeps the whole-campaign cache out of the
    # way: these tests must prove the *checkpoint* path, not the cache.
    return CampaignPipeline(
        systems=PIPE_SYSTEMS,
        caches=caches,
        reuse_campaigns=False,
        **kwargs,
    )


@pytest.fixture(scope="module")
def pipeline_baseline(caches):
    return _make_pipeline(caches).run()


class TestPipelineRecovery:
    def test_kill_and_resume_restores_checkpointed_campaigns(
        self, caches, pipeline_baseline, tmp_path
    ):
        # Fault the second campaign's only attempt: campaign 0
        # completes and checkpoints, then the sweep dies.
        def second_campaign_dies(schedule):
            return not schedule.should(
                "error", "pipeline:0|a1"
            ) and schedule.should("error", "pipeline:1|a1")

        schedule = _find_seed(second_campaign_dies)
        store = CheckpointStore(tmp_path / "pipe")
        with pytest.raises(ChaosError):
            _make_pipeline(caches, chaos=schedule, checkpoint=store).run()

        before = _counters()
        resumed = _make_pipeline(caches, checkpoint=store).run()
        assert _counter_delta(before, "resilience.checkpoint_hits") == 1
        by_name = {run.name: run for run in resumed.runs}
        assert by_name[PIPE_SYSTEMS[0]].from_checkpoint
        assert not by_name[PIPE_SYSTEMS[1]].from_checkpoint

        # Bit-identical to the fault-free sweep: summaries and the
        # parity currency itself, the per-system Vulnerability sets.
        assert _pipeline_view(resumed) == _pipeline_view(pipeline_baseline)
        assert (
            resumed.vulnerability_sets()
            == pipeline_baseline.vulnerability_sets()
        )

    def test_retry_recovery_is_bit_identical(self, caches, pipeline_baseline):
        policy = RetryPolicy(max_attempts=3, base_delay=0.001)

        def recoverable(schedule):
            fired = [
                schedule.should("error", f"pipeline:{i}|a1")
                for i in range(2)
            ]
            exhaustible = any(
                all(
                    schedule.should("error", f"pipeline:{i}|a{a}")
                    for a in range(1, policy.max_attempts + 1)
                )
                for i in range(2)
            )
            return any(fired) and not exhaustible

        schedule = _find_seed(recoverable)
        before = _counters()
        report = _make_pipeline(
            caches, retry_policy=policy, chaos=schedule
        ).run()
        assert report.failed_shards == []
        assert _counter_delta(before, "resilience.retries") >= 1
        assert _pipeline_view(report) == _pipeline_view(pipeline_baseline)
        assert (
            report.vulnerability_sets()
            == pipeline_baseline.vulnerability_sets()
        )

    def test_exhausted_campaigns_quarantine_with_system_labels(self, caches):
        report = _make_pipeline(
            caches,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.001),
            chaos=ChaosSchedule(seed=0, error_rate=1.0),
        ).run()
        assert report.runs == []
        assert sorted(f.label for f in report.failed_shards) == sorted(
            PIPE_SYSTEMS
        )
        for failure in report.failed_shards:
            assert failure.attempts == 2
            assert failure.error_kind == "ChaosError"
