"""Serve-path chaos: connection drops, slow clients and overload must
degrade into typed refusals and dropped connections — never a hung
handler or an unserved healthy client."""

import asyncio
import socket

import pytest

from repro.serve import BackgroundServer, ServeError
from repro.serve.client import submit_config
from repro.serve.server import ValidationServer
from repro.serve.service import ValidationService

SYSTEM = "storage_a"
CONFIG = "listen_port = 9090\nmax_connections = 64\n"


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(systems=[SYSTEM]) as running:
        yield running


class TestConnectionDrops:
    def test_survives_mid_request_disconnects(self, server):
        # Clients that vanish mid-line, after garbage, or right after
        # connecting: each handler must die quietly.
        for payload in (b"", b'{"op": "check", "system": ', b"\x00\xff\n"):
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            ) as sock:
                if payload:
                    sock.sendall(payload)
        # The service still answers a healthy client afterwards.
        response, _ = submit_config(
            "127.0.0.1", server.port, SYSTEM, CONFIG, read_timeout=10.0
        )
        assert response.system == SYSTEM

    def test_garbage_line_gets_a_typed_error_not_a_hang(self, server):
        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=5
        ) as sock:
            sock.sendall(b"this is not json\n")
            sock.settimeout(5)
            line = sock.makefile("rb").readline()
        assert b'"ok": false' in line
        assert b"bad-request" in line


class TestOverloadSheds:
    def test_wire_level_overload_is_a_typed_refusal(self):
        # max_pending=0 sheds every admission: the cheapest possible
        # refusal, delivered as a typed error over the wire.
        with BackgroundServer(systems=[SYSTEM], max_pending=0) as running:
            with pytest.raises(ServeError) as excinfo:
                submit_config(
                    "127.0.0.1",
                    running.port,
                    SYSTEM,
                    CONFIG,
                    read_timeout=10.0,
                )
            assert excinfo.value.code == "overloaded"
            # Shedding one client never poisons the server for the
            # next (who would be shed too — but answered, not hung).
            with pytest.raises(ServeError) as again:
                submit_config(
                    "127.0.0.1",
                    running.port,
                    SYSTEM,
                    CONFIG,
                    read_timeout=10.0,
                )
            assert again.value.code == "overloaded"


class TestSlowClients:
    def test_drain_timeout_drops_the_reader_that_stopped_reading(self):
        # Unit-level: `_drain` is the only slow-client policy point.
        # A writer whose buffer never empties is declared too slow.
        service = ValidationService(systems=[SYSTEM])
        server = ValidationServer(service, drain_timeout=0.05)

        class _CloggedWriter:
            async def drain(self):
                await asyncio.sleep(60)

        dropped = asyncio.run(server._drain(_CloggedWriter()))
        assert dropped is False
        counters = service.registry.snapshot()["counters"]
        assert counters.get("serve.slow_client_drops") == 1

    def test_fast_writers_are_untouched(self):
        service = ValidationService(systems=[SYSTEM])
        server = ValidationServer(service, drain_timeout=0.05)

        class _PromptWriter:
            async def drain(self):
                return None

        assert asyncio.run(server._drain(_PromptWriter())) is True
        counters = service.registry.snapshot()["counters"]
        assert counters.get("serve.slow_client_drops", 0) == 0
