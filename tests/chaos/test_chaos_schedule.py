"""Unit tests for `repro.chaos`: the seeded fault schedule itself."""

import pickle
import time

import pytest

from repro.chaos import ChaosError, ChaosSchedule


class TestShould:
    def test_deterministic_for_fixed_inputs(self):
        schedule = ChaosSchedule(seed=7, error_rate=0.3)
        decisions = [
            schedule.should("error", f"fleet:{i}|a1") for i in range(64)
        ]
        again = [
            schedule.should("error", f"fleet:{i}|a1") for i in range(64)
        ]
        assert decisions == again
        # A 30% rate over 64 keys fires somewhere, but not everywhere.
        assert any(decisions) and not all(decisions)

    def test_seed_changes_the_pattern(self):
        a = ChaosSchedule(seed=1, error_rate=0.3)
        b = ChaosSchedule(seed=2, error_rate=0.3)
        keys = [f"shard:{i}|a1" for i in range(64)]
        assert [a.should("error", k) for k in keys] != [
            b.should("error", k) for k in keys
        ]

    def test_kinds_are_diced_independently(self):
        schedule = ChaosSchedule(seed=3, error_rate=0.5, stall_rate=0.5)
        keys = [f"shard:{i}|a1" for i in range(64)]
        errors = [schedule.should("error", k) for k in keys]
        stalls = [schedule.should("stall", k) for k in keys]
        assert errors != stalls

    def test_attempt_number_rerolls_the_dice(self):
        schedule = ChaosSchedule(seed=5, error_rate=0.5)
        first = [schedule.should("error", f"s:{i}|a1") for i in range(64)]
        second = [schedule.should("error", f"s:{i}|a2") for i in range(64)]
        assert first != second

    def test_rate_zero_never_fires_rate_one_always(self):
        quiet = ChaosSchedule(seed=9)
        loud = ChaosSchedule(seed=9, error_rate=1.0)
        for i in range(16):
            assert not quiet.should("error", f"s:{i}|a1")
            assert loud.should("error", f"s:{i}|a1")

    def test_schedule_is_frozen_and_picklable(self):
        schedule = ChaosSchedule(seed=4, kill_rate=0.1)
        with pytest.raises(Exception):
            schedule.seed = 5
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone == schedule
        # Both sides of a process boundary agree on every decision.
        for i in range(32):
            key = f"s:{i}|a1"
            assert clone.should("kill", key) == schedule.should("kill", key)


class TestPerturb:
    def test_error_raises_chaos_error(self):
        schedule = ChaosSchedule(seed=0, error_rate=1.0)
        with pytest.raises(ChaosError):
            schedule.perturb("s:0|a1")

    def test_quiet_schedule_is_a_no_op(self):
        ChaosSchedule(seed=0).perturb("s:0|a1")  # must not raise

    def test_stall_sleeps_roughly_stall_seconds(self):
        schedule = ChaosSchedule(seed=0, stall_rate=1.0, stall_seconds=0.05)
        began = time.perf_counter()
        schedule.perturb("s:0|a1")
        assert time.perf_counter() - began >= 0.04

    def test_kill_degrades_to_error_outside_pool_workers(self):
        # allow_kill=False is the parent-process path: a fired kill
        # must raise instead of SIGKILLing the caller.
        schedule = ChaosSchedule(seed=0, kill_rate=1.0)
        with pytest.raises(ChaosError, match="simulated worker kill"):
            schedule.perturb("s:0|a1", allow_kill=False)
