"""Determinism contract for the BENCH_*.json writers
(`tools/bench_json.py`): equal payloads serialise byte-identically,
whatever order their keys were inserted in."""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from bench_json import (  # noqa: E402
    _committed_warm_rows,
    dump_payload,
    write_payload,
)


def _scrambled_payloads():
    """Two payloads equal as values but built in opposite key order."""
    forward = {
        "generated_unix": 0,
        "systems": {"mysql": {"warm": 2.0, "cold": 1.0}},
        "campaign": {"speedup": 3.5, "boot_stats": {"boots": 7}},
    }
    backward = {
        "campaign": {"boot_stats": {"boots": 7}, "speedup": 3.5},
        "systems": {"mysql": {"cold": 1.0, "warm": 2.0}},
        "generated_unix": 0,
    }
    return forward, backward


class TestDumpDeterminism:
    def test_key_insertion_order_is_erased(self):
        forward, backward = _scrambled_payloads()
        assert dump_payload(forward) == dump_payload(backward)

    def test_two_consecutive_dumps_minus_timestamp_are_identical(self):
        forward, _ = _scrambled_payloads()
        first = dict(forward, generated_unix=111)
        second = dict(forward, generated_unix=222)
        strip = "\n".join(
            line
            for line in dump_payload(first).splitlines()
            if "generated_unix" not in line
        )
        strip_second = "\n".join(
            line
            for line in dump_payload(second).splitlines()
            if "generated_unix" not in line
        )
        assert strip == strip_second

    def test_dump_is_canonical_and_round_trips(self):
        forward, _ = _scrambled_payloads()
        text = dump_payload(forward)
        assert text.endswith("\n")
        assert json.loads(text) == forward
        assert text == json.dumps(forward, indent=2, sort_keys=True) + "\n"


class TestWritePayload:
    def test_write_then_rewrite_is_byte_stable(self, tmp_path):
        forward, backward = _scrambled_payloads()
        path = tmp_path / "BENCH_x.json"
        write_payload(path, forward)
        first = path.read_bytes()
        write_payload(path, backward)
        assert path.read_bytes() == first

    def test_committed_bench_artifacts_are_canonical(self):
        for artifact in sorted(REPO_ROOT.glob("BENCH_*.json")):
            decoded = json.loads(artifact.read_text(encoding="utf-8"))
            assert artifact.read_text(encoding="utf-8") == dump_payload(
                decoded
            ), f"{artifact.name} was not written via bench_json helpers"


class TestBenchCheckSchema:
    """`make bench-check` compares warm rows across schema generations."""

    def test_engine_matrix_rows(self):
        row = {
            "tree_launches_per_s": 100.0,
            "engines": {
                "compiled": {"cold_launches_per_s": 1.0,
                             "warm_launches_per_s": 900.0},
                "codegen": {"cold_launches_per_s": 2.0,
                            "warm_launches_per_s": 1100.0},
            },
        }
        assert _committed_warm_rows(row) == {
            "compiled": 900.0,
            "codegen": 1100.0,
        }

    def test_pre_matrix_flat_row_reads_as_compiled(self):
        row = {"cold_launches_per_s": 1.0, "warm_launches_per_s": 650.0}
        assert _committed_warm_rows(row) == {"compiled": 650.0}

    def test_row_without_warm_numbers_is_empty(self):
        assert _committed_warm_rows({"tree_launches_per_s": 9.0}) == {}

    def test_committed_launch_file_yields_rows_for_every_system(self):
        committed = json.loads(
            (REPO_ROOT / "BENCH_launch.json").read_text(encoding="utf-8")
        )
        for name, row in committed["systems"].items():
            rows = _committed_warm_rows(row)
            assert set(rows) == {"compiled", "codegen"}, name
            assert all(v > 0 for v in rows.values()), name
