"""Tests for the AST lint tool (`tools/lint.py`)."""

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint import check_tree  # noqa: E402


def _codes(source: str) -> list[str]:
    tree = ast.parse(source)
    return [code for _, _, code, _ in check_tree(Path("x.py"), tree)]


class TestMutableDefault:
    def test_list_literal_default(self):
        assert _codes("def f(x=[]):\n    pass\n") == ["mutable-default"]

    def test_dict_and_set_literals(self):
        assert _codes("def f(a={}, b={1}):\n    pass\n") == [
            "mutable-default",
            "mutable-default",
        ]

    def test_constructor_calls(self):
        source = "def f(a=list(), b=dict(), c=set()):\n    pass\n"
        assert _codes(source) == ["mutable-default"] * 3

    def test_keyword_only_default(self):
        assert _codes("def f(*, x=[]):\n    pass\n") == ["mutable-default"]

    def test_async_function(self):
        assert _codes("async def f(x={}):\n    pass\n") == [
            "mutable-default"
        ]

    def test_comprehension_default(self):
        assert _codes("def f(x=[i for i in range(3)]):\n    pass\n") == [
            "mutable-default"
        ]

    def test_immutable_defaults_pass(self):
        source = (
            "def f(a=None, b=0, c='x', d=(), e=frozenset()):\n    pass\n"
        )
        assert _codes(source) == []

    def test_dataclass_field_factory_exempt(self):
        source = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class C:\n"
            "    xs: list = field(default_factory=list)\n"
        )
        assert _codes(source) == []


class TestExistingDetectors:
    def test_dead_branch_same_return(self):
        source = (
            "def f(x):\n"
            "    if x:\n"
            "        return x + 1\n"
            "    return x + 1\n"
        )
        assert _codes(source) == ["dead-branch"]

    def test_live_branch_different_return(self):
        source = (
            "def f(x):\n"
            "    if x:\n"
            "        return x + 1\n"
            "    return x - 1\n"
        )
        assert _codes(source) == []

    def test_self_compare(self):
        assert _codes("y = 1\nok = y == y\n") == ["self-compare"]

    def test_assert_tuple(self):
        assert _codes("assert (1, 'msg')\n") == ["assert-tuple"]

    def test_repo_is_clean(self):
        # The gate `make lint` enforces, in miniature: the shipped
        # sources must be free of every detector's findings.
        from lint import iter_python_files, run_builtin

        files = iter_python_files(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]
        )
        assert files
        assert run_builtin(files) == 0
