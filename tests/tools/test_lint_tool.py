"""Tests for the AST lint tool (`tools/lint.py`)."""

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint import check_tree  # noqa: E402


def _codes(source: str) -> list[str]:
    tree = ast.parse(source)
    return [code for _, _, code, _ in check_tree(Path("x.py"), tree)]


class TestMutableDefault:
    def test_list_literal_default(self):
        assert _codes("def f(x=[]):\n    pass\n") == ["mutable-default"]

    def test_dict_and_set_literals(self):
        assert _codes("def f(a={}, b={1}):\n    pass\n") == [
            "mutable-default",
            "mutable-default",
        ]

    def test_constructor_calls(self):
        source = "def f(a=list(), b=dict(), c=set()):\n    pass\n"
        assert _codes(source) == ["mutable-default"] * 3

    def test_keyword_only_default(self):
        assert _codes("def f(*, x=[]):\n    pass\n") == ["mutable-default"]

    def test_async_function(self):
        assert _codes("async def f(x={}):\n    pass\n") == [
            "mutable-default"
        ]

    def test_comprehension_default(self):
        assert _codes("def f(x=[i for i in range(3)]):\n    pass\n") == [
            "mutable-default"
        ]

    def test_immutable_defaults_pass(self):
        source = (
            "def f(a=None, b=0, c='x', d=(), e=frozenset()):\n    pass\n"
        )
        assert _codes(source) == []

    def test_dataclass_field_factory_exempt(self):
        source = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class C:\n"
            "    xs: list = field(default_factory=list)\n"
        )
        assert _codes(source) == []


class TestRegexRecompile:
    def test_compile_inside_function_flagged(self):
        source = (
            "import re\n"
            "def f(needle, text):\n"
            "    return re.compile(needle).search(text)\n"
        )
        assert _codes(source) == ["regex-recompile"]

    def test_compile_inside_method_flagged(self):
        source = (
            "import re\n"
            "class C:\n"
            "    def hits(self, needle):\n"
            "        pattern = re.compile(needle)\n"
            "        return pattern\n"
        )
        assert _codes(source) == ["regex-recompile"]

    def test_compile_inside_loop_flagged(self):
        source = (
            "import re\n"
            "patterns = []\n"
            "for word in ['a', 'b']:\n"
            "    patterns.append(re.compile(word))\n"
        )
        assert _codes(source) == ["regex-recompile"]

    def test_compile_in_while_inside_function_flagged_once(self):
        source = (
            "import re\n"
            "def f(words):\n"
            "    while words:\n"
            "        re.compile(words.pop())\n"
        )
        assert _codes(source) == ["regex-recompile"]

    def test_module_scope_compile_passes(self):
        assert _codes("import re\nPAT = re.compile('x+')\n") == []

    def test_lru_cached_function_exempt(self):
        source = (
            "import functools\n"
            "import re\n"
            "@functools.lru_cache(maxsize=64)\n"
            "def pattern_for(needle):\n"
            "    return re.compile(needle)\n"
        )
        assert _codes(source) == []

    def test_bare_cache_decorator_exempt(self):
        source = (
            "import re\n"
            "from functools import cache\n"
            "@cache\n"
            "def pattern_for(needle):\n"
            "    return re.compile(needle)\n"
        )
        assert _codes(source) == []

    def test_loop_inside_cached_function_exempt(self):
        # The cache bounds the recompiles to one per distinct input;
        # a loop inside it is the cached function's own business.
        source = (
            "import functools\n"
            "import re\n"
            "@functools.lru_cache\n"
            "def patterns_for(words):\n"
            "    return [re.compile(w) for w in words]\n"
        )
        assert _codes(source) == []

    def test_default_argument_compile_passes(self):
        # Defaults evaluate once at def time, not per call.
        source = (
            "import re\n"
            "def f(pat=re.compile('x')):\n"
            "    return pat\n"
        )
        assert _codes(source) == []

    def test_default_argument_inside_loop_still_flagged(self):
        # ...but a def inside a loop re-evaluates its defaults per
        # iteration.
        source = (
            "import re\n"
            "fns = []\n"
            "for w in ['a', 'b']:\n"
            "    def f(pat=re.compile('x')):\n"
            "        return pat\n"
            "    fns.append(f)\n"
        )
        assert _codes(source) == ["regex-recompile"]

    def test_decorator_argument_compile_passes(self):
        source = (
            "import re\n"
            "def deco(pattern):\n"
            "    def wrap(fn):\n"
            "        return fn\n"
            "    return wrap\n"
            "@deco(re.compile('x'))\n"
            "def g():\n"
            "    return 1\n"
        )
        assert _codes(source) == []

    def test_nested_function_resets_loop_context(self):
        # The inner def runs per call, not per iteration of the outer
        # loop - still flagged, but as a per-call compile.
        source = (
            "import re\n"
            "def outer(xs):\n"
            "    out = []\n"
            "    for x in xs:\n"
            "        def inner():\n"
            "            return re.compile('x')\n"
            "        out.append(inner)\n"
            "    return out\n"
        )
        assert _codes(source) == ["regex-recompile"]


class TestImperativeSystem:
    SYSTEM_PATH = Path("src/repro/systems/newsys.py")
    IMPERATIVE = (
        "from repro.systems.base import SubjectSystem\n"
        "def build():\n"
        "    return SubjectSystem(name='newsys', program='', "
        "annotations='', config=None, tests=(), ground_truth=())\n"
    )

    def _codes_at(self, path: Path, source: str) -> list[str]:
        return [c for _, _, c, _ in check_tree(path, ast.parse(source))]

    def test_direct_construction_flagged(self):
        assert self._codes_at(self.SYSTEM_PATH, self.IMPERATIVE) == [
            "imperative-system"
        ]

    def test_attribute_construction_flagged(self):
        source = (
            "from repro.systems import base\n"
            "def build():\n"
            "    return base.SubjectSystem(name='newsys')\n"
        )
        assert self._codes_at(self.SYSTEM_PATH, source) == [
            "imperative-system"
        ]

    def test_declarative_module_passes(self):
        source = (
            "from repro.systems.spec import ParamSpec, SystemSpec\n"
            "SPEC = SystemSpec(name='newsys', program='', "
            "annotations='', params=())\n"
            "def build():\n"
            "    return SPEC.build()\n"
        )
        assert self._codes_at(self.SYSTEM_PATH, source) == []

    def test_allowlisted_modules_exempt(self):
        from lint import IMPERATIVE_SYSTEM_ALLOWLIST

        for name in sorted(IMPERATIVE_SYSTEM_ALLOWLIST):
            path = Path("src/repro/systems") / name
            assert self._codes_at(path, self.IMPERATIVE) == []

    def test_non_system_modules_exempt(self):
        # The detector is scoped to src/repro/systems/; the same call
        # elsewhere (tests, checker fixtures) is legitimate.
        for raw in (
            "x.py",
            "tests/systems/test_spec_migration.py",
            "src/repro/checker/helper.py",
        ):
            assert self._codes_at(Path(raw), self.IMPERATIVE) == []

    def test_allowlist_tracks_reality(self):
        # Every allowlisted module must still exist and - except for
        # the class-definition and compiler sites - still be
        # imperative.  A migrated system left on the allowlist would
        # silently disable the gate for it.
        from lint import IMPERATIVE_SYSTEM_ALLOWLIST

        systems_dir = REPO_ROOT / "src" / "repro" / "systems"
        for name in IMPERATIVE_SYSTEM_ALLOWLIST:
            assert (systems_dir / name).exists(), name
        for name in IMPERATIVE_SYSTEM_ALLOWLIST - {"base.py", "spec.py"}:
            source = (systems_dir / name).read_text(encoding="utf-8")
            assert "SubjectSystem(" in source, (
                f"{name} looks migrated; drop it from the allowlist"
            )


class TestObservabilityEscapes:
    LIB_PATH = Path("src/repro/inject/campaign.py")

    def _codes_at(self, path: Path, source: str) -> list[str]:
        return [c for _, _, c, _ in check_tree(path, ast.parse(source))]

    def test_bare_print_in_library_module_flagged(self):
        source = "def f(x):\n    print(x)\n    return x\n"
        assert self._codes_at(self.LIB_PATH, source) == ["bare-print"]

    def test_wall_clock_in_library_module_flagged(self):
        source = "import time\nstamp = time.time()\n"
        assert self._codes_at(self.LIB_PATH, source) == ["wall-clock"]

    def test_monotonic_clocks_pass(self):
        source = (
            "import time\n"
            "a = time.perf_counter()\n"
            "b = time.monotonic()\n"
        )
        assert self._codes_at(self.LIB_PATH, source) == []

    def test_time_method_on_other_object_passes(self):
        # clock.time() is an injected clock, not the wall clock.
        source = "def f(clock):\n    return clock.time()\n"
        assert self._codes_at(self.LIB_PATH, source) == []

    def test_cli_module_may_print_but_not_wall_clock(self):
        path = Path("src/repro/reporting/cli.py")
        assert self._codes_at(path, "print('hi')\n") == []
        assert self._codes_at(path, "import time\ntime.time()\n") == [
            "wall-clock"
        ]

    def test_non_library_modules_exempt(self):
        # Tests, tools and benchmarks print and read clocks freely;
        # the discipline applies to src/repro/ only.
        source = "import time\nprint(time.time())\n"
        for raw in (
            "x.py",
            "tools/lint.py",
            "tests/obs/test_metrics.py",
            "benchmarks/test_obs_overhead.py",
        ):
            assert self._codes_at(Path(raw), source) == []

    def test_print_allowlist_tracks_reality(self):
        # Every allowlisted module must exist and still print; a
        # module that stopped printing should lose its exemption.
        from lint import BARE_PRINT_ALLOWLIST

        lib_root = REPO_ROOT / "src" / "repro"
        for rel in BARE_PRINT_ALLOWLIST:
            module = lib_root / rel
            assert module.exists(), rel
            assert "print(" in module.read_text(encoding="utf-8"), (
                f"{rel} no longer prints; drop it from the allowlist"
            )

    def test_wall_clock_allowlist_tracks_reality(self):
        from lint import WALL_CLOCK_ALLOWLIST

        lib_root = REPO_ROOT / "src" / "repro"
        for rel in WALL_CLOCK_ALLOWLIST:
            module = lib_root / rel
            assert module.exists(), rel
            assert "time.time(" in module.read_text(encoding="utf-8"), (
                f"{rel} no longer reads the wall clock; drop it"
            )


class TestDynamicExec:
    LIB_PATH = Path("src/repro/inject/campaign.py")

    def _codes_at(self, path: Path, source: str) -> list[str]:
        return [c for _, _, c, _ in check_tree(path, ast.parse(source))]

    def test_exec_in_library_module_flagged(self):
        source = "def f(src):\n    exec(src)\n"
        assert self._codes_at(self.LIB_PATH, source) == ["dynamic-exec"]

    def test_eval_in_library_module_flagged(self):
        source = "def f(expr):\n    return eval(expr)\n"
        assert self._codes_at(self.LIB_PATH, source) == ["dynamic-exec"]

    def test_codegen_engine_exempt(self):
        path = Path("src/repro/runtime/codegen.py")
        source = "def f(src):\n    exec(compile(src, '<x>', 'exec'), {})\n"
        assert self._codes_at(path, source) == []

    def test_method_named_eval_passes(self):
        # obj.eval(...) is an ordinary method, not the builtin.
        source = "def f(model, x):\n    return model.eval(x)\n"
        assert self._codes_at(self.LIB_PATH, source) == []

    def test_non_library_modules_exempt(self):
        source = "exec('pass')\neval('1')\n"
        for raw in ("x.py", "tools/lint.py", "tests/lint/test_detectors.py"):
            assert self._codes_at(Path(raw), source) == []

    def test_allowlist_tracks_reality(self):
        # Every exempted module must exist and still exec; anything
        # else on the list would silently disable the gate.  The list
        # must stay exactly the codegen engine unless a second code
        # generator lands.
        from lint import DYNAMIC_EXEC_ALLOWLIST

        assert DYNAMIC_EXEC_ALLOWLIST == {"runtime/codegen.py"}
        lib_root = REPO_ROOT / "src" / "repro"
        for rel in DYNAMIC_EXEC_ALLOWLIST:
            module = lib_root / rel
            assert module.exists(), rel
            assert "exec(" in module.read_text(encoding="utf-8"), (
                f"{rel} no longer executes generated code; drop it"
            )


class TestSilentException:
    LIB_PATH = Path("src/repro/inject/campaign.py")

    def _codes_at(self, path: Path, source: str) -> list[str]:
        return [c for _, _, c, _ in check_tree(path, ast.parse(source))]

    def test_bare_except_flagged(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        log()\n"
        )
        assert self._codes_at(self.LIB_PATH, source) == ["silent-exception"]

    def test_broad_silent_handler_flagged(self):
        for body in ("pass", "..."):
            source = (
                "def f():\n"
                "    try:\n"
                "        work()\n"
                f"    except Exception:\n        {body}\n"
            )
            assert self._codes_at(self.LIB_PATH, source) == [
                "silent-exception"
            ]

    def test_base_exception_and_tuple_forms_flagged(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (ValueError, BaseException):\n"
            "        pass\n"
        )
        assert self._codes_at(self.LIB_PATH, source) == ["silent-exception"]

    def test_broad_handler_that_acts_passes(self):
        # Recording, re-raising or returning is handling, not hiding.
        for body in ("raise", "return None", "log(exc)"):
            source = (
                "def f():\n"
                "    try:\n"
                "        work()\n"
                f"    except Exception as exc:\n        {body}\n"
            )
            assert self._codes_at(self.LIB_PATH, source) == []

    def test_narrow_silent_handler_passes(self):
        # `except OSError: pass` names exactly what it tolerates; the
        # rule targets the catch-everything-say-nothing idiom.
        source = (
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (OSError, ValueError):\n"
            "        pass\n"
        )
        assert self._codes_at(self.LIB_PATH, source) == []

    def test_non_library_modules_exempt(self):
        source = "try:\n    x()\nexcept:\n    pass\n"
        for raw in ("x.py", "tools/lint.py", "tests/lint/test_x.py"):
            assert self._codes_at(Path(raw), source) == []

    def test_allowlist_tracks_reality(self):
        # The allowlist is empty today; any future entry must point at
        # a real module that still contains a broad handler.
        from lint import SILENT_EXCEPT_ALLOWLIST

        lib_root = REPO_ROOT / "src" / "repro"
        for rel in SILENT_EXCEPT_ALLOWLIST:
            module = lib_root / rel
            assert module.exists(), rel
            text = module.read_text(encoding="utf-8")
            assert "except" in text, (
                f"{rel} no longer handles exceptions; drop it"
            )


class TestExistingDetectors:
    def test_dead_branch_same_return(self):
        source = (
            "def f(x):\n"
            "    if x:\n"
            "        return x + 1\n"
            "    return x + 1\n"
        )
        assert _codes(source) == ["dead-branch"]

    def test_live_branch_different_return(self):
        source = (
            "def f(x):\n"
            "    if x:\n"
            "        return x + 1\n"
            "    return x - 1\n"
        )
        assert _codes(source) == []

    def test_self_compare(self):
        assert _codes("y = 1\nok = y == y\n") == ["self-compare"]

    def test_assert_tuple(self):
        assert _codes("assert (1, 'msg')\n") == ["assert-tuple"]

    def test_repo_is_clean(self):
        # The gate `make lint` enforces, in miniature: the shipped
        # sources must be free of every detector's findings.
        from lint import iter_python_files, run_builtin

        files = iter_python_files(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tools")]
        )
        assert files
        assert run_builtin(files) == 0
