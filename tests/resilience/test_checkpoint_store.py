"""Unit tests for `repro.resilience.checkpoint`: atomic writes,
digest-verified reads, content addressing."""

import os

from repro.resilience import CheckpointStore


class TestRoundtrip:
    def test_save_then_load(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", "shard-1", b"payload bytes")
        assert store.load("run", "shard-1") == b"payload bytes"

    def test_missing_shard_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load("run", "never-saved") is None

    def test_empty_payload_roundtrips(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", "empty", b"")
        assert store.load("run", "empty") == b""

    def test_overwrite_wins(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", "s", b"first")
        store.save("run", "s", b"second")
        assert store.load("run", "s") == b"second"

    def test_two_store_instances_share_the_directory(self, tmp_path):
        CheckpointStore(tmp_path).save("run", "s", b"x")
        assert CheckpointStore(tmp_path).load("run", "s") == b"x"


class TestContentAddressing:
    def test_run_keys_isolate(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run-spec-v1", "shard", b"old")
        # Any change to the run spec changes the run key, so the new
        # run can never resurrect the old shard.
        assert store.load("run-spec-v2", "shard") is None

    def test_shard_keys_isolate(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", "mysql:0:32", b"a")
        assert store.load("run", "mysql:32:32") is None

    def test_shard_count(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.shard_count("run") == 0
        store.save("run", "a", b"1")
        store.save("run", "b", b"2")
        store.save("other", "a", b"3")
        assert store.shard_count("run") == 2
        assert store.shard_count("other") == 1


class TestCorruptionReadsAsMissing:
    def _shard_file(self, tmp_path, store):
        run_dir = next(p for p in tmp_path.iterdir() if p.is_dir())
        return next(p for p in run_dir.iterdir() if p.suffix == ".ckpt")

    def test_truncated_file(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", "s", b"payload")
        path = self._shard_file(tmp_path, store)
        body = path.read_bytes()
        path.write_bytes(body[: len(body) // 2])
        assert store.load("run", "s") is None

    def test_flipped_payload_byte(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", "s", b"payload")
        path = self._shard_file(tmp_path, store)
        body = bytearray(path.read_bytes())
        body[-1] ^= 0xFF
        path.write_bytes(bytes(body))
        assert store.load("run", "s") is None

    def test_wrong_magic(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", "s", b"payload")
        path = self._shard_file(tmp_path, store)
        path.write_bytes(b"NOTCKPT\n" + path.read_bytes()[8:])
        assert store.load("run", "s") is None

    def test_garbage_file(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run", "s", b"payload")
        path = self._shard_file(tmp_path, store)
        path.write_bytes(b"\x00" * 16)
        assert store.load("run", "s") is None


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for i in range(5):
            store.save("run", f"s{i}", b"x" * 100)
        leftovers = [
            p
            for p in tmp_path.rglob("*")
            if p.is_file() and p.suffix != ".ckpt"
        ]
        assert leftovers == []

    def test_temp_name_is_pid_tagged(self, tmp_path):
        # Concurrent savers (thread or process workers) must never
        # collide on the temp name; the pid tag guarantees it across
        # processes.
        store = CheckpointStore(tmp_path)
        path = store._shard_path("run", "s")
        assert str(os.getpid()) in f"{path.name}.{os.getpid()}.tmp"


class TestClear:
    def test_clear_drops_only_that_run(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("run-a", "s", b"1")
        store.save("run-b", "s", b"2")
        store.clear("run-a")
        assert store.load("run-a", "s") is None
        assert store.load("run-b", "s") == b"2"

    def test_clear_is_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.clear("never-saved")
        store.save("run", "s", b"1")
        store.clear("run")
        store.clear("run")
        assert store.shard_count("run") == 0
