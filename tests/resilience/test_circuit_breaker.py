"""Unit tests for `repro.resilience.circuit`: the closed → open →
half-open state machine, driven by an injected clock."""

import threading

import pytest

from repro.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_breaker(threshold=2, reset_seconds=10.0):
    clock = FakeClock()
    return CircuitBreaker(threshold, reset_seconds, clock=clock), clock


class TestValidation:
    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)

    def test_reset_seconds_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(reset_seconds=0.0)


class TestTripAndRefuse:
    def test_starts_closed_and_allows(self):
        breaker, _ = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_threshold_consecutive_failures(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # one short of the threshold
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = make_breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        # Never two *consecutive* failures, so still closed.
        assert breaker.state == CLOSED


class TestHalfOpenProbe:
    def test_cool_down_moves_to_half_open(self):
        breaker, clock = make_breaker(threshold=1, reset_seconds=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 9.9
        assert breaker.state == OPEN
        clock.now = 10.0
        assert breaker.state == HALF_OPEN

    def test_exactly_one_probe_gets_through(self):
        breaker, clock = make_breaker(threshold=1, reset_seconds=10.0)
        breaker.record_failure()
        clock.now = 11.0
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else keeps being refused
        assert not breaker.allow()

    def test_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, reset_seconds=10.0)
        breaker.record_failure()
        clock.now = 11.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow() and breaker.allow()  # fully open for business

    def test_probe_failure_restarts_the_cool_down(self):
        breaker, clock = make_breaker(threshold=3, reset_seconds=10.0)
        for _ in range(3):
            breaker.record_failure()
        clock.now = 11.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed: one strike re-opens
        assert breaker.state == OPEN
        clock.now = 20.9  # cool-down restarted at t=11
        assert breaker.state == OPEN
        clock.now = 21.0
        assert breaker.state == HALF_OPEN


class TestThreadSafety:
    def test_concurrent_allow_yields_one_probe(self):
        breaker, clock = make_breaker(threshold=1, reset_seconds=1.0)
        breaker.record_failure()
        clock.now = 2.0
        grants = []
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            if breaker.allow():
                grants.append(True)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(grants) == 1
