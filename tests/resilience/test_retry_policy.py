"""Unit tests for `repro.resilience.retry`: policy math, validation,
and the shard-failure records."""

import pickle

import pytest

from repro.resilience import FailedShard, ResilientMapResult, RetryPolicy


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.timeout is None

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_jitter_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_timeout_must_be_positive_or_none(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        assert RetryPolicy(timeout=None).timeout is None
        assert RetryPolicy(timeout=0.5).timeout == 0.5

    def test_policy_is_frozen_and_picklable(self):
        policy = RetryPolicy(max_attempts=5, timeout=1.0)
        with pytest.raises(Exception):
            policy.max_attempts = 7
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestBackoffSchedule:
    def test_exponential_doubling_before_jitter(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=10.0, jitter=0.0)
        assert policy.delay_for(1) == pytest.approx(0.01)
        assert policy.delay_for(2) == pytest.approx(0.02)
        assert policy.delay_for(3) == pytest.approx(0.04)

    def test_cap_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=2.5, jitter=0.0)
        assert policy.delay_for(10) == pytest.approx(2.5)

    def test_jitter_shrinks_within_band(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=10.0, jitter=0.5)
        delay = policy.delay_for(1, key="fleet:3")
        assert 0.005 <= delay <= 0.01

    def test_jitter_is_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay_for(2, key="a") == policy.delay_for(2, key="a")
        assert policy.delay_for(2, key="a") != policy.delay_for(2, key="b")
        assert policy.delay_for(1, key="a") != policy.delay_for(2, key="a")

    def test_non_positive_attempt_means_no_delay(self):
        policy = RetryPolicy()
        assert policy.delay_for(0) == 0.0
        assert policy.delay_for(-3) == 0.0


class TestFailedShard:
    def test_summary_dict_roundtrips_every_field(self):
        shard = FailedShard(
            index=4,
            label="mysql:4",
            attempts=3,
            error_kind="timeout",
            detail="exceeded the 0.5s watchdog deadline",
        )
        assert shard.summary_dict() == {
            "index": 4,
            "label": "mysql:4",
            "attempts": 3,
            "error_kind": "timeout",
            "detail": "exceeded the 0.5s watchdog deadline",
        }

    def test_picklable_for_the_process_boundary(self):
        shard = FailedShard(0, "x:0", 1, "ChaosError", "boom")
        assert pickle.loads(pickle.dumps(shard)) == shard


class TestResilientMapResult:
    def test_ok_and_completed(self):
        clean = ResilientMapResult(results=[1, 2], failures=[])
        assert clean.ok and clean.completed() == [1, 2]

        hurt = ResilientMapResult(
            results=[1, None, 3],
            failures=[FailedShard(1, "f:1", 3, "RuntimeError", "x")],
            retries=2,
        )
        assert not hurt.ok
        assert hurt.completed() == [1, 3]
        assert hurt.retries == 2
