"""Unit tests for the Table 2 generation plug-ins."""

from repro.core.constraints import (
    BasicTypeConstraint,
    ControlDepConstraint,
    EnumRangeConstraint,
    NumericRangeConstraint,
    SemanticTypeConstraint,
    ValueRelConstraint,
)
from repro.inject.ar import ConfigAR, KeyValueDialect
from repro.inject.generators import default_generators
from repro.knowledge import SemanticType
from repro.lang import types as ct
from repro.lang.source import Location

LOC = Location("x.c", 1, 1)


def generate(constraint, template_text="param=5\nother=10\ngate=on\n"):
    template = ConfigAR.parse(template_text, KeyValueDialect("="))
    return default_generators().generate([constraint], template)


def values_for(misconfs, param):
    return [dict(m.settings)[param] for m in misconfs if param in dict(m.settings)]


class TestBasicTypePlugin:
    def test_int_violations(self):
        misconfs = generate(BasicTypeConstraint("param", LOC, ct.INT))
        values = values_for(misconfs, "param")
        assert "fast" in values  # garbage
        assert any(int(v) > 2**32 for v in values if v.isdigit())  # overflow
        assert "12.5" in values  # float
        assert "9G" in values  # unit suffix
        assert "100000" in values and "0" in values  # extremes

    def test_string_params_skip_basic(self):
        misconfs = generate(BasicTypeConstraint("param", LOC, ct.STRING))
        assert values_for(misconfs, "param") == []


class TestSemanticTypePlugin:
    def test_file_violations(self):
        misconfs = generate(
            SemanticTypeConstraint("param", LOC, semantic=SemanticType.FILE)
        )
        values = values_for(misconfs, "param")
        assert "/data/injected_dir" in values  # directory-for-file
        assert "/no/such/file" in values

    def test_port_violations(self):
        misconfs = generate(
            SemanticTypeConstraint("param", LOC, semantic=SemanticType.PORT)
        )
        values = values_for(misconfs, "param")
        assert "3130" in values  # the occupied port
        assert "70000" in values  # out of range

    def test_user_violation(self):
        misconfs = generate(
            SemanticTypeConstraint("param", LOC, semantic=SemanticType.USER)
        )
        assert "no_such_user_xyz" in values_for(misconfs, "param")


class TestRangePlugin:
    def test_numeric_covers_both_sides(self):
        misconfs = generate(
            NumericRangeConstraint("param", LOC, valid_lo=4, valid_hi=255)
        )
        values = values_for(misconfs, "param")
        assert "3" in values  # just below
        assert "256" in values  # just above

    def test_enum_outside_and_case(self):
        misconfs = generate(
            EnumRangeConstraint(
                "param", LOC, values=("on", "off"), case_sensitive=True
            )
        )
        values = values_for(misconfs, "param")
        assert "unsupported_choice" in values
        assert "ON" in values  # case alternation of a valid value


class TestControlDepPlugin:
    def test_generates_gate_and_param(self):
        misconfs = generate(
            ControlDepConstraint(
                "param", LOC, dep_param="gate", op="!=", value=0
            )
        )
        assert len(misconfs) == 1
        settings = dict(misconfs[0].settings)
        assert settings["gate"] == "off"  # spelled like the template
        assert settings["param"] != "5"  # explicitly non-default
        # Q first: the vulnerability belongs to the ignored parameter.
        assert misconfs[0].primary_param == "param"


class TestValueRelPlugin:
    def test_violates_less_than(self):
        misconfs = generate(
            ValueRelConstraint("param", LOC, op="<", other_param="other")
        )
        settings = dict(misconfs[0].settings)
        assert int(settings["param"]) > int(settings["other"])

    def test_violates_greater_equal(self):
        misconfs = generate(
            ValueRelConstraint("param", LOC, op=">=", other_param="other")
        )
        settings = dict(misconfs[0].settings)
        assert int(settings["param"]) < int(settings["other"])


class TestRegistryDedup:
    def test_duplicate_settings_deduped(self):
        constraint = NumericRangeConstraint("param", LOC, valid_lo=4, valid_hi=255)
        template = ConfigAR.parse("param=5\n", KeyValueDialect("="))
        registry = default_generators()
        misconfs = registry.generate([constraint, constraint], template)
        keys = [(m.settings, m.rule) for m in misconfs]
        assert len(keys) == len(set(keys))
