"""Reaction-classification edge cases of the injection harness:
stop-at-first-failure modes, pinpoint word-boundary matching, and
partial effective-value traversal (silent-violation evidence)."""

import pytest

from repro.core.constraints import BasicTypeConstraint
from repro.inject.generators import Misconfiguration
from repro.inject.harness import InjectionHarness
from repro.inject.reactions import ReactionCategory
from repro.lang.source import Location
from repro.runtime.os_model import LogRecord
from repro.runtime.process import ProcessResult, ProcessStatus
from repro.systems import get_system


def _misconf(param: str, value: str) -> Misconfiguration:
    return Misconfiguration(
        settings=((param, value),),
        constraint=BasicTypeConstraint(param, Location("t.c", 0, 0)),
        rule="test",
        description="test",
    )


def _result_with_logs(*lines: str) -> ProcessResult:
    return ProcessResult(
        status=ProcessStatus.EXITED,
        exit_code=0,
        logs=[LogRecord("stderr", line) for line in lines],
    )


class _StubAR:
    """Just enough of a ConfigAR for pinpointing: line lookups."""

    def __init__(self, lines: dict[str, int]):
        self._lines = lines

    def line_of(self, name):
        return self._lines.get(name)


@pytest.fixture(scope="module")
def openldap():
    return get_system("openldap")


@pytest.fixture(scope="module")
def failing_misconf():
    # sockbuf_max_incoming -1 starts cleanly but fails every
    # functional test (the Figure 7(c) shape).
    return _misconf("sockbuf_max_incoming", "-1")


class TestStopAtFirstFailure:
    def test_optimized_mode_stops_at_first_failure(
        self, openldap, failing_misconf
    ):
        harness = InjectionHarness(openldap, stop_at_first_failure=True)
        verdict = harness.test_misconfiguration(failing_misconf)
        assert verdict.reaction.category is ReactionCategory.FUNCTIONAL_FAILURE
        assert verdict.tests_run == 1
        assert len(verdict.failed_tests) == 1

    def test_full_suite_mode_drives_every_test(
        self, openldap, failing_misconf
    ):
        harness = InjectionHarness(openldap, stop_at_first_failure=False)
        verdict = harness.test_misconfiguration(failing_misconf)
        # The whole suite ran, and every failure was recorded.
        assert verdict.tests_run == len(openldap.tests)
        assert set(verdict.failed_tests) == {t.name for t in openldap.tests}

    def test_both_modes_agree_on_classification(
        self, openldap, failing_misconf
    ):
        stop = InjectionHarness(
            openldap, stop_at_first_failure=True
        ).test_misconfiguration(failing_misconf)
        full = InjectionHarness(
            openldap, stop_at_first_failure=False
        ).test_misconfiguration(failing_misconf)
        # Classification follows the first observed failure either way;
        # full-suite mode only adds coverage, never changes the verdict.
        assert full.reaction.category is stop.reaction.category
        assert full.reaction.failed_test == stop.reaction.failed_test
        assert full.failed_tests[0] == stop.failed_tests[0]
        assert full.tests_run > stop.tests_run

    def test_passing_misconf_identical_in_both_modes(self, openldap):
        # idletimeout is silently clamped: startup succeeds and every
        # functional test passes, so both modes run the full suite.
        misconf = _misconf("idletimeout", "0")
        stop = InjectionHarness(
            openldap, stop_at_first_failure=True
        ).test_misconfiguration(misconf)
        full = InjectionHarness(
            openldap, stop_at_first_failure=False
        ).test_misconfiguration(misconf)
        assert stop.tests_run == full.tests_run == len(openldap.tests)
        assert stop.failed_tests == full.failed_tests == ()
        assert stop.reaction.category is full.reaction.category


class _ScriptedSystem:
    """A stub system whose launches are scripted per request list."""

    name = "scripted"
    config_path = "/etc/scripted.conf"

    def __init__(self, tests, script):
        self.tests = tests
        self._script = script

    def template_ar(self):
        from repro.inject.ar import ConfigAR, KeyValueDialect

        return ConfigAR.parse("knob = 1\n", KeyValueDialect())

    def result_for(self, requests):
        key = tuple(requests or ())
        return self._script[key]


def _scripted_harness(system, **kwargs):
    harness = InjectionHarness(system, **kwargs)
    harness.launch = lambda config, requests=None: system.result_for(requests)
    return harness


class TestCrashMidSuite:
    """A crash on a later test must not change how the first observed
    failure classifies the misconfiguration - in either mode."""

    @pytest.fixture()
    def system(self):
        from repro.systems.base import FunctionalTest

        ok = ProcessResult(status=ProcessStatus.EXITED, exit_code=0)
        fail = ProcessResult(status=ProcessStatus.EXITED, exit_code=1)
        crash = ProcessResult(
            status=ProcessStatus.CRASHED,
            fault_signal="SIGSEGV",
            fault_reason="segfault",
        )
        tests = [
            FunctionalTest("a", ["A"], lambda r: True, duration=1.0),
            FunctionalTest("b", ["B"], lambda r: True, duration=2.0),
        ]
        return _ScriptedSystem(
            tests, {(): ok, ("A",): fail, ("B",): crash}
        )

    def test_stop_mode_returns_first_failure(self, system):
        harness = _scripted_harness(system, stop_at_first_failure=True)
        verdict = harness.test_misconfiguration(_misconf("knob", "2"))
        assert verdict.reaction.category is ReactionCategory.FUNCTIONAL_FAILURE
        assert verdict.tests_run == 1
        assert verdict.failed_tests == ("a",)

    def test_full_mode_keeps_driving_past_the_crash(self, system):
        harness = _scripted_harness(system, stop_at_first_failure=False)
        verdict = harness.test_misconfiguration(_misconf("knob", "2"))
        # Classification still follows the first observed failure...
        assert verdict.reaction.category is ReactionCategory.FUNCTIONAL_FAILURE
        assert verdict.reaction.failed_test == "a"
        # ...and the crash is recorded, not silently dropped.
        assert verdict.tests_run == 2
        assert verdict.failed_tests == ("a", "b")

    def test_crash_first_classifies_crash_in_both_modes(self, system):
        system._script[("A",)], system._script[("B",)] = (
            system._script[("B",)],
            system._script[("A",)],
        )
        for stop in (True, False):
            harness = _scripted_harness(system, stop_at_first_failure=stop)
            verdict = harness.test_misconfiguration(_misconf("knob", "2"))
            assert (
                verdict.reaction.category is ReactionCategory.CRASH_HANG
            ), stop
            assert verdict.failed_tests[0] == "a"


class TestPinpointWordBoundary:
    def _harness(self, openldap):
        return InjectionHarness(openldap)

    def test_parameter_name_match(self, openldap):
        harness = self._harness(openldap)
        result = _result_with_logs("invalid value for sockbuf_max_incoming")
        assert harness._pinpointed(
            result, _misconf("sockbuf_max_incoming", "-1"), _StubAR({})
        )

    def test_line_number_requires_exact_line(self, openldap):
        harness = self._harness(openldap)
        misconf = _misconf("threads", "9999")
        ar = _StubAR({"threads": 1})
        # "line 12" must NOT be credited as a pinpoint of line 1.
        assert not harness._pinpointed(
            misconf=misconf,
            result=_result_with_logs("syntax error at line 12"),
            ar=ar,
        )
        assert harness._pinpointed(
            misconf=misconf,
            result=_result_with_logs("syntax error at line 1, near 'threads'"),
            ar=ar,
        )
        assert harness._pinpointed(
            misconf=misconf,
            result=_result_with_logs("error at line 1: bad value"),
            ar=ar,
        )

    def test_short_value_not_credited_inside_longer_number(self, openldap):
        harness = self._harness(openldap)
        misconf = _misconf("threads", "10")
        ar = _StubAR({})
        # "10" buried in "3100" or "10240" is not a pinpoint...
        assert not harness._pinpointed(
            misconf=misconf,
            result=_result_with_logs("allocated 3100 slots, limit 10240"),
            ar=ar,
        )
        # ...but the standalone value is.
        assert harness._pinpointed(
            misconf=misconf,
            result=_result_with_logs("refusing to start 10 threads"),
            ar=ar,
        )

    def test_one_character_values_never_match(self, openldap):
        harness = self._harness(openldap)
        assert not harness._pinpointed(
            misconf=_misconf("threads", "7"),
            result=_result_with_logs("error 7 occurred"),
            ar=_StubAR({}),
        )


class _StubInterp:
    def __init__(self, globals_):
        self.globals = globals_


class _StubStruct:
    def __init__(self, fields):
        self.fields = fields


class TestEffectiveValueTraversal:
    def test_missing_global_is_unresolved(self):
        value, resolved = InjectionHarness._resolve_effective(
            _StubInterp({}), "cfg", ()
        )
        assert not resolved
        assert value is None

    def test_partial_path_is_unresolved(self):
        interp = _StubInterp({"cfg": _StubStruct({"net": _StubStruct({})})})
        value, resolved = InjectionHarness._resolve_effective(
            interp, "cfg", ("net", "port")
        )
        assert not resolved

    def test_non_struct_hop_is_unresolved(self):
        interp = _StubInterp({"cfg": 42})
        _, resolved = InjectionHarness._resolve_effective(
            interp, "cfg", ("port",)
        )
        assert not resolved

    def test_full_path_resolves(self):
        interp = _StubInterp(
            {"cfg": _StubStruct({"net": _StubStruct({"port": 8080})})}
        )
        value, resolved = InjectionHarness._resolve_effective(
            interp, "cfg", ("net", "port")
        )
        assert resolved
        assert value == 8080

    def test_unresolvable_location_is_not_a_silent_violation(self, openldap):
        harness = InjectionHarness(openldap)
        misconf = _misconf("index_intlen", "300")
        # An interpreter snapshot missing the effective-value global
        # is "no evidence", never a reported value change.
        startup = ProcessResult(
            status=ProcessStatus.EXITED,
            exit_code=0,
            interpreter=_StubInterp({}),
        )
        assert harness._silently_changed(misconf, startup) is None

    def test_resolved_divergent_value_is_reported(self, openldap):
        harness = InjectionHarness(openldap)
        misconf = _misconf("index_intlen", "300")
        startup = ProcessResult(
            status=ProcessStatus.EXITED,
            exit_code=0,
            interpreter=_StubInterp({"index_intlen": 255}),
        )
        changed = harness._silently_changed(misconf, startup)
        assert changed == ("index_intlen", "300", 255)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
