"""Unit tests for the config-file abstract representation."""

from repro.inject.ar import ConfigAR, ConfigEntry, DirectiveDialect, KeyValueDialect


class TestKeyValueDialect:
    def test_parse_and_get(self):
        ar = ConfigAR.parse("a=1\nb = two\n# comment\n\nc=3\n", KeyValueDialect("="))
        assert ar.get("a") == "1"
        assert ar.get("b") == "two"
        assert ar.get("c") == "3"
        assert ar.get("missing") is None

    def test_set_replaces_in_place(self):
        ar = ConfigAR.parse("a=1\nb=2\n", KeyValueDialect("="))
        ar.set("a", "9")
        assert ar.get("a") == "9"
        assert ar.names() == ["a", "b"]

    def test_set_appends_new(self):
        ar = ConfigAR.parse("a=1\n", KeyValueDialect("="))
        ar.set("new", "x")
        assert ar.get("new") == "x"

    def test_serialize_preserves_comments_and_order(self):
        text = "# header\na=1\nb=2\n"
        ar = ConfigAR.parse(text, KeyValueDialect("="))
        out = ar.serialize()
        assert out.splitlines()[0] == "# header"
        assert "a=1" in out
        assert "b=2" in out

    def test_clone_isolated(self):
        ar = ConfigAR.parse("a=1\n", KeyValueDialect("="))
        clone = ar.clone()
        clone.set("a", "2")
        assert ar.get("a") == "1"
        assert clone.get("a") == "2"

    def test_line_numbers(self):
        ar = ConfigAR.parse("# c\na=1\nb=2\n", KeyValueDialect("="))
        assert ar.line_of("a") == 2
        assert ar.line_of("b") == 3

    def test_remove(self):
        ar = ConfigAR.parse("a=1\nb=2\n", KeyValueDialect("="))
        assert ar.remove("a")
        assert ar.get("a") is None
        assert not ar.remove("a")


class TestDirectiveDialect:
    def test_parse_directive_lines(self):
        ar = ConfigAR.parse(
            "Listen 80\nDocumentRoot /var/www html\n", DirectiveDialect()
        )
        assert ar.get("Listen") == "80"
        assert ar.get("DocumentRoot") == "/var/www html"

    def test_directive_without_value(self):
        ar = ConfigAR.parse("EnableFoo\n", DirectiveDialect())
        assert ar.get("EnableFoo") == ""

    def test_roundtrip(self):
        text = "Listen 80\nServerName localhost\n"
        ar = ConfigAR.parse(text, DirectiveDialect())
        assert ar.serialize() == text
