"""Unit tests for the ConfErr baseline injector (§6)."""

from repro.inject.ar import ConfigAR, KeyValueDialect
from repro.inject.conferr import (
    ConfErrBaseline,
    case_alternation,
    omission,
    substitution,
    transposition,
)


class TestOperators:
    def test_omission_drops_one_char(self):
        [(param, value)] = omission("p", "hello")
        assert param == "p"
        assert len(value) == 4

    def test_omission_skips_single_char(self):
        assert omission("p", "x") == []

    def test_substitution_changes_one_char(self):
        [(_, value)] = substitution("p", "port")
        assert value != "port"
        assert len(value) == 4

    def test_case_alternation_prefers_upper(self):
        assert case_alternation("p", "on") == [("p", "ON")]
        assert case_alternation("p", "ON") == [("p", "on")]
        assert case_alternation("p", "123") == []

    def test_transposition_swaps_prefix(self):
        assert transposition("p", "ab") == [("p", "ba")]
        assert transposition("p", "aa") == []


class TestBaseline:
    def test_generates_for_every_entry(self):
        template = ConfigAR.parse("a=value\nb=2121\n", KeyValueDialect("="))
        misconfs = ConfErrBaseline().generate(template)
        params = {m.primary_param for m in misconfs}
        assert params == {"a", "b"}
        # Deterministic: same template, same output.
        again = ConfErrBaseline().generate(template)
        assert [m.settings for m in again] == [m.settings for m in misconfs]

    def test_skips_empty_values(self):
        template = ConfigAR.parse("a=\nb=x y\n", KeyValueDialect("="))
        misconfs = ConfErrBaseline().generate(template)
        assert all(m.primary_param == "b" for m in misconfs)

    def test_rules_tagged_as_conferr(self):
        template = ConfigAR.parse("a=value\n", KeyValueDialect("="))
        for misconf in ConfErrBaseline().generate(template):
            assert misconf.rule.startswith("conferr-")
