"""Unit tests for the constraint data model and accuracy scoring."""

from repro.core.accuracy import (
    score_accuracy,
    truth_basic,
    truth_ctrl_dep,
    truth_range,
    truth_value_rel,
)
from repro.core.constraints import (
    BasicTypeConstraint,
    ConstraintKind,
    ConstraintSet,
    ControlDepConstraint,
    EnumRangeConstraint,
    NumericRangeConstraint,
    ValueRelConstraint,
)
from repro.lang import types as ct
from repro.lang.source import Location

LOC = Location("t.c", 1, 1)


class TestNumericRange:
    def test_contains(self):
        c = NumericRangeConstraint("p", LOC, valid_lo=4, valid_hi=255)
        assert c.contains(4) and c.contains(255) and c.contains(100)
        assert not c.contains(3) and not c.contains(256)

    def test_unbounded_sides(self):
        c = NumericRangeConstraint("p", LOC, valid_lo=None, valid_hi=10)
        assert c.contains(-(10**9))
        assert not c.contains(11)

    def test_describe_mentions_bounds(self):
        c = NumericRangeConstraint("p", LOC, valid_lo=1, valid_hi=2)
        assert "[1, 2]" in c.describe()


class TestEnumRange:
    def test_case_insensitive_contains(self):
        c = EnumRangeConstraint("p", LOC, values=("on", "off"), case_sensitive=False)
        assert c.contains("ON")
        assert not c.contains("maybe")

    def test_case_sensitive_contains(self):
        c = EnumRangeConstraint("p", LOC, values=("on",), case_sensitive=True)
        assert not c.contains("ON")
        assert c.contains("on")


class TestValueRel:
    def test_normalized_flips_op(self):
        c = ValueRelConstraint("z_param", LOC, op="<", other_param="a_param")
        n = c.normalized()
        assert (n.param, n.op, n.other_param) == ("a_param", ">", "z_param")

    def test_normalized_stable_when_ordered(self):
        c = ValueRelConstraint("a", LOC, op="<", other_param="b")
        assert c.normalized() is c


class TestConstraintSet:
    def test_grouping_accessors(self):
        cs = ConstraintSet("sys")
        cs.add(BasicTypeConstraint("a", LOC, ct.INT))
        cs.add(NumericRangeConstraint("a", LOC, valid_lo=1))
        cs.add(ControlDepConstraint("b", LOC, dep_param="a", op="!=", value=0))
        assert len(cs.basic_types()) == 1
        assert len(cs.ranges()) == 1
        assert len(cs.control_deps()) == 1
        assert {c.param for c in cs.for_param("a")} == {"a"}
        counts = cs.count_by_kind()
        assert counts[ConstraintKind.BASIC_TYPE] == 1
        assert cs.parameters == {"a", "b"}


class TestAccuracyScoring:
    def test_true_positive_and_false_positive(self):
        cs = ConstraintSet("sys")
        cs.add(BasicTypeConstraint("a", LOC, ct.INT))
        cs.add(BasicTypeConstraint("b", LOC, ct.INT))  # wrong: truth says string
        truth = [truth_basic("a", "int"), truth_basic("b", "string")]
        report = score_accuracy("sys", cs, truth)
        assert report.accuracy("basic") == 0.5
        assert len(report.false_positives) == 1

    def test_string_normalization(self):
        from repro.lang.types import STRING

        cs = ConstraintSet("sys")
        cs.add(BasicTypeConstraint("a", LOC, STRING))
        report = score_accuracy("sys", cs, [truth_basic("a", "string")])
        assert report.accuracy("basic") == 1.0

    def test_value_rel_symmetric_match(self):
        cs = ConstraintSet("sys")
        cs.add(ValueRelConstraint("min", LOC, op="<", other_param="max"))
        report = score_accuracy("sys", cs, [truth_value_rel("max", "min")])
        assert report.accuracy("value_rel") == 1.0

    def test_ctrl_dep_keyed_on_pair(self):
        cs = ConstraintSet("sys")
        cs.add(ControlDepConstraint("q", LOC, dep_param="p", op="!=", value=0))
        report = score_accuracy("sys", cs, [truth_ctrl_dep("q", "p")])
        assert report.accuracy("ctrl_dep") == 1.0

    def test_overall_aggregates(self):
        cs = ConstraintSet("sys")
        cs.add(BasicTypeConstraint("a", LOC, ct.INT))
        cs.add(NumericRangeConstraint("a", LOC, valid_lo=0))
        report = score_accuracy(
            "sys", cs, [truth_basic("a", "int"), truth_range("a")]
        )
        assert report.overall() == 1.0

    def test_empty_is_none(self):
        report = score_accuracy("sys", ConstraintSet("sys"), [])
        assert report.overall() is None
        assert report.accuracy("basic") is None
