"""Integration tests reproducing every Figure 3 inference example.

Each test encodes one sub-figure of the paper's Figure 3 in MiniC and
checks that SPEX infers the constraint the paper reports.
"""

from repro.core import SpexEngine
from repro.core.constraints import (
    BasicTypeConstraint,
    ControlDepConstraint,
    EnumRangeConstraint,
    NumericRangeConstraint,
    SemanticTypeConstraint,
    ValueRelConstraint,
)
from repro.knowledge import SemanticType
from repro.lang.program import Program


def run_spex(source, annotations):
    program = Program.from_sources({"system.c": source})
    return SpexEngine(program, annotations).run()


STRUCT_TABLE_PRELUDE = """
struct config_str { char *name; char **var; };
struct config_int { char *name; int *var; int def; };
"""


class TestFigure3aBasicType:
    # Storage-A: "log.filesize" transformed from char* to 32-bit int.
    def test_basic_type_from_first_cast(self):
        report = run_spex(
            STRUCT_TABLE_PRELUDE
            + """
            char *filesize_str;
            int log_filesize;
            struct config_str options[] = {
                { "log.filesize", &filesize_str },
            };
            int parse_size() {
                long v = strtoll(filesize_str, NULL, 10);
                log_filesize = (int)v;
                return log_filesize;
            }
            """,
            """
            { @STRUCT = options
              @PAR = [config_str, 1]
              @VAR = [config_str, 2] }
            """,
        )
        basics = [
            c
            for c in report.constraints.basic_types()
            if c.param == "log.filesize"
        ]
        assert basics
        assert str(basics[0].type) == "int"  # 32-bit integer


class TestFigure3bSemanticTypeFile:
    # MySQL: ft_stopword_file passed through my_open to open().
    def test_file_semantic_through_wrapper(self):
        report = run_spex(
            STRUCT_TABLE_PRELUDE
            + """
            char *ft_stopword_file;
            struct config_str options[] = {
                { "ft_stopword_file", &ft_stopword_file },
            };
            int my_open(char *FileName, int Flags) {
                int fd = open(FileName, Flags);
                return fd;
            }
            int ft_init_stopwords() {
                int fd = my_open(ft_stopword_file, 0);
                return fd;
            }
            """,
            """
            { @STRUCT = options
              @PAR = [config_str, 1]
              @VAR = [config_str, 2] }
            """,
        )
        semantics = [
            c
            for c in report.constraints.semantic_types()
            if c.param == "ft_stopword_file"
        ]
        assert any(c.semantic is SemanticType.FILE for c in semantics)


class TestFigure3cSemanticTypePort:
    # Squid: udp_port flows into SetPort -> htons.
    def test_port_semantic_through_htons(self):
        report = run_spex(
            STRUCT_TABLE_PRELUDE
            + """
            int udp_port;
            struct config_int options[] = {
                { "udp_port", &udp_port, 3130 },
            };
            int set_port(int prt) {
                return htons(prt);
            }
            int icpOpenPorts() {
                int port = udp_port;
                return set_port(port);
            }
            """,
            """
            { @STRUCT = options
              @PAR = [config_int, 1]
              @VAR = [config_int, 2] }
            """,
        )
        semantics = [
            c for c in report.constraints.semantic_types() if c.param == "udp_port"
        ]
        assert any(c.semantic is SemanticType.PORT for c in semantics)


class TestFigure3dDataRange:
    # OpenLDAP: index_intlen clamped into [4, 255].
    def test_clamp_range_with_reset_behavior(self):
        report = run_spex(
            STRUCT_TABLE_PRELUDE
            + """
            int index_intlen;
            struct config_int options[] = {
                { "index_intlen", &index_intlen, 4 },
            };
            int config_generic() {
                if (index_intlen < 4) {
                    index_intlen = 4;
                } else if (index_intlen > 255) {
                    index_intlen = 255;
                }
                return index_intlen;
            }
            """,
            """
            { @STRUCT = options
              @PAR = [config_int, 1]
              @VAR = [config_int, 2] }
            """,
        )
        ranges = [
            c
            for c in report.constraints.ranges()
            if isinstance(c, NumericRangeConstraint) and c.param == "index_intlen"
        ]
        assert ranges
        constraint = ranges[0]
        assert constraint.valid_lo == 4
        assert constraint.valid_hi == 255
        assert constraint.below_behavior == "reset"
        assert constraint.above_behavior == "reset"


class TestFigure3eControlDependency:
    # PostgreSQL: commit_siblings takes effect only when fsync != 0.
    def test_control_dependency_through_call_site(self):
        report = run_spex(
            STRUCT_TABLE_PRELUDE
            + """
            int enableFsync;
            int CommitSiblings;
            struct config_int options[] = {
                { "fsync", &enableFsync, 1 },
                { "commit_siblings", &CommitSiblings, 5 },
            };
            int MinimumActiveBackends(int min) {
                if (min > 0) { return 1; }
                return 0;
            }
            int RecordTransactionCommit() {
                if (enableFsync != 0) {
                    return MinimumActiveBackends(CommitSiblings);
                }
                return 0;
            }
            """,
            """
            { @STRUCT = options
              @PAR = [config_int, 1]
              @VAR = [config_int, 2] }
            """,
        )
        deps = [
            c
            for c in report.constraints.control_deps()
            if c.param == "commit_siblings"
        ]
        assert deps
        dep = deps[0]
        assert dep.dep_param == "fsync"
        assert dep.op == "!="
        assert dep.value == 0
        assert dep.confidence >= 0.75


class TestFigure3fValueRelationship:
    # MySQL: ft_max_word_len should be greater than ft_min_word_len.
    def test_min_max_relation_through_intermediate(self):
        report = run_spex(
            STRUCT_TABLE_PRELUDE
            + """
            int ft_min_word_len;
            int ft_max_word_len;
            struct config_int options[] = {
                { "ft_min_word_len", &ft_min_word_len, 4 },
                { "ft_max_word_len", &ft_max_word_len, 84 },
            };
            int ft_get_word(int length) {
                if (length >= ft_min_word_len && length < ft_max_word_len) {
                    return 1;
                }
                return 0;
            }
            """,
            """
            { @STRUCT = options
              @PAR = [config_int, 1]
              @VAR = [config_int, 2] }
            """,
        )
        rels = report.constraints.value_rels()
        assert rels
        rel = rels[0].normalized()
        assert {rel.param, rel.other_param} == {
            "ft_min_word_len",
            "ft_max_word_len",
        }
        # min < max (normalized orientation puts ft_max first
        # alphabetically, so expect ft_max > ft_min).
        assert (rel.param, rel.op, rel.other_param) == (
            "ft_max_word_len",
            ">",
            "ft_min_word_len",
        )


class TestMayBeliefFiltering:
    # VSFTP: listen_port used after checks of both listen and
    # listen_ipv6; each candidate has confidence 0.5 -> filtered.
    def test_alternative_guards_filtered_at_075(self):
        report = run_spex(
            STRUCT_TABLE_PRELUDE
            + """
            int listen_ipv4;
            int listen_ipv6;
            int listen_port;
            struct config_int options[] = {
                { "listen", &listen_ipv4, 1 },
                { "listen_ipv6", &listen_ipv6, 0 },
                { "listen_port", &listen_port, 21 },
            };
            int start_v4() {
                if (listen_ipv4 != 0) {
                    return bind(socket(2, 1, 0), listen_port);
                }
                return 0;
            }
            int start_v6() {
                if (listen_ipv6 != 0) {
                    return bind(socket(10, 1, 0), listen_port);
                }
                return 0;
            }
            """,
            """
            { @STRUCT = options
              @PAR = [config_int, 1]
              @VAR = [config_int, 2] }
            """,
        )
        deps = [
            c for c in report.constraints.control_deps() if c.param == "listen_port"
        ]
        assert deps == []  # both candidates have confidence 0.5

    def test_single_guard_passes_threshold(self):
        report = run_spex(
            STRUCT_TABLE_PRELUDE
            + """
            int use_tls;
            int tls_port;
            struct config_int options[] = {
                { "ssl_enable", &use_tls, 0 },
                { "ssl_port", &tls_port, 990 },
            };
            int start_tls() {
                if (use_tls != 0) {
                    return bind(socket(2, 1, 0), tls_port);
                }
                return 0;
            }
            """,
            """
            { @STRUCT = options
              @PAR = [config_int, 1]
              @VAR = [config_int, 2] }
            """,
        )
        deps = [c for c in report.constraints.control_deps() if c.param == "ssl_port"]
        assert deps
        assert deps[0].dep_param == "ssl_enable"
        assert deps[0].confidence == 1.0


class TestEnumAndOverruling:
    def test_boolean_ladder_with_silent_overrule(self):
        # Squid Figure 6(c): anything not "on" silently becomes off.
        report = run_spex(
            """
            struct config_bool { char *name; int *var; };
            int cache_flag;
            struct config_bool options[] = {
                { "cache_enable", &cache_flag },
            };
            int parse_bool(char *token) {
                if (strcasecmp(token, "on") == 0) {
                    cache_flag = 1;
                } else {
                    cache_flag = 0;
                }
                return cache_flag;
            }
            int check() {
                if (cache_flag != 0) { return 1; }
                return 0;
            }
            """,
            """
            { @STRUCT = options
              @PAR = [config_bool, 1]
              @VAR = [config_bool, 2] }
            """,
        )
        # The ladder is over the raw token, not the stored variable;
        # the overrule shows up via the stored variable's reset in the
        # else region. This test documents the token-side behaviour:
        # the parse function's parameter is not a seed here, so the
        # enum comes from systems where the annotated variable itself
        # is compared. See test below for the param-seeded form.
        assert report.constraints is not None

    def test_enum_ladder_on_param_seed(self):
        report = run_spex(
            """
            struct cmd { char *name; void *fn; };
            int overwrite_mode;
            int set_mode(char *arg) {
                if (strcasecmp(arg, "always") == 0) {
                    overwrite_mode = 2;
                } else if (strcasecmp(arg, "never") == 0) {
                    overwrite_mode = 0;
                } else {
                    overwrite_mode = 1;
                }
                return 0;
            }
            struct cmd commands[] = {
                { "overwrite_mode", set_mode },
            };
            """,
            """
            { @STRUCT = commands
              @PAR = [cmd, 1]
              @VAR = ([cmd, 2], $arg) }
            """,
        )
        enums = [
            c
            for c in report.constraints.ranges()
            if isinstance(c, EnumRangeConstraint) and c.param == "overwrite_mode"
        ]
        assert enums
        constraint = enums[0]
        assert set(constraint.values) == {"always", "never"}
        assert constraint.case_sensitive is False
        assert constraint.silently_overruled  # the else silently resets
