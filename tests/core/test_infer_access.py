"""Access-control constraint inference (`repro.core.infer_access`).

The sixth constraint class: a tainted path reaching an
access-asserting API becomes "this path must be readable/writable by
the acting identity", a tainted value reaching ``chmod``'s mode
argument becomes "this parameter is installed verbatim as a
permission mode", and when the identity is itself configuration the
constraint records the pairing.
"""

from repro.core import SpexEngine, SpexOptions
from repro.core.accuracy import score_accuracy, truth_access
from repro.core.constraints import AccessControlConstraint
from repro.lang.program import Program
from repro.runtime.os_model import EmulatedOS, node_allows

ANNOTATIONS = """
{ @STRUCT = options
  @PAR = [config_str, 1]
  @VAR = [config_str, 2] }
"""

PRELUDE = """
struct config_str { char *name; char **var; };
"""

PAIRED_SOURCE = PRELUDE + """
char *data_dir;
char *spool_dir;
char *run_user;
char *store_mode;
struct config_str options[] = {
    { "data_dir", &data_dir },
    { "spool_dir", &spool_dir },
    { "user", &run_user },
    { "store_mode", &store_mode },
};
int startup() {
    if (check_read_access(data_dir, run_user) != 0) {
        exit(1);
    }
    if (check_write_access(spool_dir, run_user) != 0) {
        exit(1);
    }
    long mode = strtol(store_mode, NULL, 8);
    chmod(spool_dir, mode);
    return 0;
}
"""


def run_spex(source, annotations=ANNOTATIONS, options=None):
    program = Program.from_sources({"system.c": source})
    return SpexEngine(program, annotations, options=options).run()


def by_identity(report):
    return {
        (c.param, c.operation, c.user_param)
        for c in report.constraints.access_controls()
    }


class TestInference:
    def test_read_write_and_mode_with_paired_identity(self):
        report = run_spex(PAIRED_SOURCE)
        assert by_identity(report) == {
            ("data_dir", "read", "user"),
            ("spool_dir", "write", "user"),
            ("store_mode", "mode", ""),
        }

    def test_literal_identity_leaves_user_param_empty(self):
        report = run_spex(
            PRELUDE
            + """
            char *data_dir;
            struct config_str options[] = {
                { "data_dir", &data_dir },
            };
            int startup() {
                if (check_read_access(data_dir, "nobody") != 0) {
                    exit(1);
                }
                return 0;
            }
            """
        )
        assert by_identity(report) == {("data_dir", "read", "")}

    def test_mode_taint_survives_strtol(self):
        # The octal text flows through strtol into chmod's mode slot;
        # the library-call taint union is what carries it.
        report = run_spex(PAIRED_SOURCE)
        modes = [
            c
            for c in report.constraints.access_controls()
            if c.operation == "mode"
        ]
        assert [c.param for c in modes] == ["store_mode"]

    def test_repeated_sites_dedup_to_one_constraint(self):
        report = run_spex(
            PRELUDE
            + """
            char *data_dir;
            char *run_user;
            struct config_str options[] = {
                { "data_dir", &data_dir },
                { "user", &run_user },
            };
            int early() {
                if (check_read_access(data_dir, run_user) != 0) {
                    return 1;
                }
                return 0;
            }
            int late() {
                if (check_read_access(data_dir, run_user) != 0) {
                    exit(1);
                }
                return 0;
            }
            """
        )
        assert by_identity(report) == {("data_dir", "read", "user")}

    def test_pass_can_be_disabled(self):
        options = SpexOptions(enable_access_controls=False)
        report = run_spex(PAIRED_SOURCE, options=options)
        assert report.constraints.access_controls() == []
        assert report.constraint_counts()["access_control"] == 0

    def test_counts_surface_in_report(self):
        report = run_spex(PAIRED_SOURCE)
        assert report.constraint_counts()["access_control"] == 3


class TestAccuracyScoring:
    def test_truth_access_matches_inferred(self):
        report = run_spex(PAIRED_SOURCE)
        truth = [
            truth_access("data_dir", "read"),
            truth_access("spool_dir", "write"),
            truth_access("store_mode", "mode"),
        ]
        accuracy = score_accuracy("toy", report.constraints, truth)
        true, total = accuracy.per_kind["access_control"]
        assert (true, total) == (3, 3)


class TestEmulatedOsAclModel:
    def test_node_allows_owner_and_other_bits(self):
        # Owner judged by the user bits, everyone else by other bits.
        assert node_allows(0o700, "alice", True, "alice", False)
        assert not node_allows(0o700, "alice", True, "bob", False)
        assert node_allows(0o704, "alice", True, "bob", False)
        assert not node_allows(0o704, "alice", True, "bob", True)
        assert node_allows(0o702, "alice", True, "bob", True)

    def test_legacy_writable_flag_vetoes_writes(self):
        # The pre-ACL fixture flag stays an independent veto: mode
        # bits alone cannot re-open a read-only node for writing.
        assert not node_allows(0o777, "alice", False, "alice", True)
        assert node_allows(0o777, "alice", False, "alice", False)

    def test_root_bypasses_modes(self):
        assert node_allows(0o000, "alice", True, "root", False)
        assert node_allows(0o000, "alice", True, "root", True)

    def test_os_can_read_write_and_chmod(self):
        os_model = EmulatedOS()
        node = os_model.add_dir("/data/private")
        node.mode = 0o700
        node.owner = "root"
        assert not os_model.can_read("/data/private", "www-data")
        os_model.chmod("/data/private", 0o755)
        assert os_model.can_read("/data/private", "www-data")
        assert not os_model.can_write("/data/private", "www-data")

    def test_standard_restricted_fixture(self):
        # Every system's world carries the guaranteed-denied target
        # the ACL mistake generator points paths at.
        from repro.systems import get_system

        os_model = get_system("vsftpd").make_os()
        assert not os_model.can_read("/data/restricted_dir", "nobody")
        assert not os_model.can_write("/data/restricted_dir", "nobody")
