"""Unit tests for the Figure 4 annotation language."""

import pytest

from repro.core.annotations import (
    AnnotationError,
    GetterAnnotation,
    ParserAnnotation,
    StructAnnotation,
    parse_annotations,
)


class TestStructAnnotations:
    def test_direct_struct(self):
        anns, loa = parse_annotations(
            """
            { @STRUCT = ConfigureNamesInt
              @PAR = [config_int, 1]
              @VAR = [config_int, 2] }
            """
        )
        assert len(anns) == 1
        ann = anns[0]
        assert isinstance(ann, StructAnnotation)
        assert ann.table == "ConfigureNamesInt"
        assert ann.struct == "config_int"
        assert ann.par_index == 1
        assert ann.var_index == 2
        assert ann.handler_arg is None
        assert loa == 3

    def test_function_struct(self):
        anns, _ = parse_annotations(
            """
            { @STRUCT = core_cmds
              @PAR = [command_rec, 1]
              @VAR = ([command_rec, 2], $arg) }
            """
        )
        ann = anns[0]
        assert ann.handler_arg == "arg"
        assert ann.var_index == 2


class TestParserAnnotations:
    def test_parser(self):
        anns, loa = parse_annotations(
            """
            { @PARSER = loadServerConfig
              @PAR = $key
              @VAR = $value }
            """
        )
        ann = anns[0]
        assert isinstance(ann, ParserAnnotation)
        assert ann.function == "loadServerConfig"
        assert ann.par_var == "key"
        assert ann.var_var == "value"
        assert loa == 3

    def test_parser_requires_dollar_vars(self):
        with pytest.raises(AnnotationError):
            parse_annotations("{ @PARSER = f\n @PAR = key\n @VAR = $v }")


class TestGetterAnnotations:
    def test_getter(self):
        anns, loa = parse_annotations(
            """
            { @GETTER = get_i32
              @PAR = 1
              @VAR = $RET }
            """
        )
        ann = anns[0]
        assert isinstance(ann, GetterAnnotation)
        assert ann.function == "get_i32"
        assert ann.par_index == 1


class TestMultipleBlocks:
    def test_multiple_blocks_and_loa(self):
        anns, loa = parse_annotations(
            """
            # PostgreSQL-style tables
            { @STRUCT = ConfigureNamesInt
              @PAR = [config_int, 1]
              @VAR = [config_int, 2] }
            { @GETTER = get_str
              @PAR = 1
              @VAR = $RET }
            """
        )
        assert len(anns) == 2
        assert loa == 6

    def test_missing_kind_raises(self):
        with pytest.raises(AnnotationError):
            parse_annotations("{ @PAR = [s, 1]\n @VAR = [s, 2] }")
