"""Unit tests for the MiniC lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]  # drop EOF


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifiers_and_keywords(self):
        toks = tokenize("int foo while_ _bar")
        assert toks[0].kind is TokenKind.KW_INT
        assert toks[1].kind is TokenKind.IDENT
        assert toks[1].text == "foo"
        assert toks[2].kind is TokenKind.IDENT  # while_ is not a keyword
        assert toks[3].kind is TokenKind.IDENT

    def test_null_keyword_is_uppercase(self):
        toks = tokenize("NULL null")
        assert toks[0].kind is TokenKind.KW_NULL
        assert toks[1].kind is TokenKind.IDENT

    def test_decimal_integer(self):
        tok = tokenize("12345")[0]
        assert tok.kind is TokenKind.INT_LIT
        assert tok.value == 12345

    def test_hex_integer(self):
        tok = tokenize("0xFF")[0]
        assert tok.value == 255

    def test_octal_integer(self):
        tok = tokenize("0755")[0]
        assert tok.value == 0o755

    def test_integer_suffixes_ignored(self):
        assert tokenize("10L")[0].value == 10
        assert tokenize("10UL")[0].value == 10

    def test_float_literal(self):
        tok = tokenize("3.25")[0]
        assert tok.kind is TokenKind.FLOAT_LIT
        assert tok.value == 3.25

    def test_float_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-1")[0].value == 0.25

    def test_char_literal(self):
        assert tokenize("'a'")[0].value == ord("a")
        assert tokenize("'\\n'")[0].value == ord("\n")
        assert tokenize("'\\0'")[0].value == 0

    def test_string_literal(self):
        tok = tokenize('"hello world"')[0]
        assert tok.kind is TokenKind.STRING_LIT
        assert tok.value == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\tb\n"')[0].value == "a\tb\n"
        assert tokenize(r'"\x41"')[0].value == "A"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("@")


class TestOperators:
    def test_multi_char_operators_longest_match(self):
        assert kinds("a <<= b") == [
            TokenKind.IDENT,
            TokenKind.SHL_ASSIGN,
            TokenKind.IDENT,
        ]
        assert kinds("a << b") == [TokenKind.IDENT, TokenKind.SHL, TokenKind.IDENT]
        assert kinds("a->b") == [TokenKind.IDENT, TokenKind.ARROW, TokenKind.IDENT]

    def test_comparison_operators(self):
        assert kinds("< <= > >= == !=") == [
            TokenKind.LT,
            TokenKind.LE,
            TokenKind.GT,
            TokenKind.GE,
            TokenKind.EQ,
            TokenKind.NE,
        ]

    def test_increment_vs_plus(self):
        assert kinds("a++ + ++b") == [
            TokenKind.IDENT,
            TokenKind.PLUS_PLUS,
            TokenKind.PLUS,
            TokenKind.PLUS_PLUS,
            TokenKind.IDENT,
        ]


class TestTrivia:
    def test_line_comments_skipped(self):
        assert kinds("a // comment\n b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comments_skipped(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_preprocessor_lines_skipped(self):
        assert kinds('#include "x.h"\nint a;') == [
            TokenKind.KW_INT,
            TokenKind.IDENT,
            TokenKind.SEMI,
        ]

    def test_locations_track_lines_and_columns(self):
        toks = tokenize("a\n  b")
        assert toks[0].location.line == 1
        assert toks[0].location.column == 1
        assert toks[1].location.line == 2
        assert toks[1].location.column == 3
