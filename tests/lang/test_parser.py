"""Unit tests for the MiniC parser."""

import pytest

from repro.lang import types as ct
from repro.lang.ast_nodes import (
    Assign,
    Binary,
    Block,
    Call,
    Cast,
    Conditional,
    ExprStmt,
    For,
    FunctionDef,
    Identifier,
    If,
    Index,
    InitList,
    IntLiteral,
    Member,
    Return,
    StringLiteral,
    StructDecl,
    Switch,
    Unary,
    VarDecl,
    While,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_source


def parse_expr(text):
    ast = parse_source(f"void f() {{ {text}; }}")
    fn = ast.functions[0]
    stmt = fn.body.statements[0]
    assert isinstance(stmt, ExprStmt)
    return stmt.expr


def parse_stmt(text):
    ast = parse_source(f"void f() {{ {text} }}")
    return ast.functions[0].body.statements[0]


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("a + b * c")
        assert isinstance(expr, Binary)
        assert expr.op == "+"
        assert isinstance(expr.right, Binary)
        assert expr.right.op == "*"

    def test_precedence_comparison_over_logic(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<"
        assert expr.right.op == ">"

    def test_assignment_right_associative(self):
        expr = parse_expr("a = b = 1")
        assert isinstance(expr, Assign)
        assert isinstance(expr.value, Assign)

    def test_compound_assignment(self):
        expr = parse_expr("a += 2")
        assert isinstance(expr, Assign)
        assert expr.op == "+="

    def test_ternary(self):
        expr = parse_expr("a ? b : c")
        assert isinstance(expr, Conditional)

    def test_call_with_args(self):
        expr = parse_expr('open("f", 0)')
        assert isinstance(expr, Call)
        assert expr.callee == "open"
        assert len(expr.args) == 2
        assert isinstance(expr.args[0], StringLiteral)

    def test_member_and_arrow(self):
        expr = parse_expr("cfg.field")
        assert isinstance(expr, Member)
        assert not expr.arrow
        expr = parse_expr("ptr->field")
        assert expr.arrow

    def test_chained_member(self):
        expr = parse_expr("a.b.c")
        assert isinstance(expr, Member)
        assert expr.field_name == "c"
        assert isinstance(expr.base, Member)

    def test_index(self):
        expr = parse_expr("arr[i + 1]")
        assert isinstance(expr, Index)
        assert isinstance(expr.index, Binary)

    def test_cast(self):
        expr = parse_expr("(int)x")
        assert isinstance(expr, Cast)
        assert expr.type == ct.INT

    def test_cast_vs_paren(self):
        expr = parse_expr("(x)")
        assert isinstance(expr, Identifier)

    def test_pointer_cast(self):
        expr = parse_expr("(char*)x")
        assert isinstance(expr, Cast)
        assert expr.type == ct.STRING

    def test_address_of_and_deref(self):
        expr = parse_expr("*p")
        assert isinstance(expr, Unary)
        assert expr.op == "*"
        expr = parse_expr("&v")
        assert expr.op == "&"

    def test_unary_minus_folds_nothing(self):
        expr = parse_expr("-x")
        assert isinstance(expr, Unary)
        assert expr.op == "-"

    def test_string_concatenation(self):
        expr = parse_expr('"a" "b"')
        assert isinstance(expr, StringLiteral)
        assert expr.value == "ab"


class TestStatements:
    def test_if_else_ladder(self):
        stmt = parse_stmt("if (a) { } else if (b) { } else { }")
        assert isinstance(stmt, If)
        assert isinstance(stmt.other, If)
        assert stmt.other.other is not None

    def test_while_loop(self):
        stmt = parse_stmt("while (i < 10) { i = i + 1; }")
        assert isinstance(stmt, While)

    def test_for_loop_with_decl(self):
        stmt = parse_stmt("for (int i = 0; i < 10; i++) { }")
        assert isinstance(stmt, For)
        assert isinstance(stmt.init, VarDecl)

    def test_for_loop_empty_clauses(self):
        stmt = parse_stmt("for (;;) { break; }")
        assert isinstance(stmt, For)
        assert stmt.init is None
        assert stmt.cond is None

    def test_switch_with_cases_and_default(self):
        stmt = parse_stmt(
            "switch (x) { case 1: a = 1; break; case 2: a = 2; break; default: a = 0; }"
        )
        assert isinstance(stmt, Switch)
        assert len(stmt.cases) == 3
        assert stmt.cases[2].value is None

    def test_local_decl_with_init(self):
        stmt = parse_stmt("int x = 5;")
        assert isinstance(stmt, VarDecl)
        assert isinstance(stmt.init, IntLiteral)

    def test_multi_declarator(self):
        stmt = parse_stmt("int x = 1, y = 2;")
        assert isinstance(stmt, Block)
        assert len(stmt.statements) == 2

    def test_return_value(self):
        stmt = parse_stmt("return 42;")
        assert isinstance(stmt, Return)
        assert stmt.value.value == 42


class TestTopLevel:
    def test_function_definition(self):
        ast = parse_source("int add(int a, int b) { return a + b; }")
        fn = ast.functions[0]
        assert fn.name == "add"
        assert fn.return_type == ct.INT
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_function_prototype(self):
        ast = parse_source("extern int open(char *path, int flags);")
        fn = ast.declarations[0]
        assert isinstance(fn, FunctionDef)
        assert fn.is_declaration

    def test_variadic_prototype(self):
        ast = parse_source("extern int printf(char *fmt, ...);")
        assert ast.declarations[0].variadic

    def test_struct_declaration(self):
        ast = parse_source("struct point { int x; int y; char *label; };")
        decl = ast.declarations[0]
        assert isinstance(decl, StructDecl)
        assert [f.name for f in decl.fields] == ["x", "y", "label"]
        assert decl.fields[2].type == ct.STRING

    def test_global_with_initializer(self):
        ast = parse_source("int max_conns = 100;")
        decl = ast.globals[0]
        assert decl.name == "max_conns"
        assert decl.init.value == 100

    def test_global_struct_array_table(self):
        # The PostgreSQL-style mapping table from Figure 4(a).
        ast = parse_source(
            """
            struct config_int { char *name; int *var; int def; int min; int max; };
            int DeadlockTimeout = 1000;
            struct config_int ConfigureNamesInt[] = {
                { "deadlock_timeout", &DeadlockTimeout, 1000, 1, 100000 },
            };
            """
        )
        table = ast.globals[1]
        assert table.name == "ConfigureNamesInt"
        assert isinstance(table.init, InitList)
        row = table.init.items[0]
        assert isinstance(row, InitList)
        assert isinstance(row.items[0], StringLiteral)
        assert row.items[0].value == "deadlock_timeout"
        assert isinstance(row.items[1], Unary)
        assert row.items[1].op == "&"

    def test_enum_constants_fold(self):
        ast = parse_source(
            """
            enum modes { MODE_OFF = 0, MODE_ON = 1, MODE_AUTO };
            int x = MODE_AUTO;
            """
        )
        decl = ast.globals[0]
        assert isinstance(decl.init, IntLiteral)
        assert decl.init.value == 2

    def test_typedef(self):
        ast = parse_source(
            """
            typedef unsigned int uint32_t;
            uint32_t counter = 0;
            """
        )
        decl = ast.globals[0]
        assert decl.type == ct.UINT

    def test_syntax_error_reports_location(self):
        with pytest.raises(ParseError) as err:
            parse_source("int f( { }")
        assert err.value.location is not None


class TestProgramLinking:
    def test_program_links_files(self):
        from repro.lang.program import Program

        program = Program.from_sources(
            {
                "a.c": "int shared = 1; int helper(int x) { return x + shared; }",
                "b.c": "extern int helper(int x); int main() { return helper(41); }",
            }
        )
        assert program.has_function("helper")
        assert program.has_function("main")
        assert "shared" in program.globals
        assert "helper" in program.prototypes or program.has_function("helper")

    def test_duplicate_function_rejected(self):
        from repro.lang.errors import SemanticError
        from repro.lang.program import Program

        with pytest.raises(SemanticError):
            Program.from_sources(
                {"a.c": "int f() { return 1; }", "b.c": "int f() { return 2; }"}
            )

    def test_loc_counting_skips_comments(self):
        from repro.lang.source import SourceFile

        src = SourceFile(
            "x.c",
            "// comment\nint a;\n\n/* block\n   comment */\nint b; /* tail */\n",
        )
        assert src.count_code_lines() == 2
