"""Tests for the historical-case replay (Tables 9-10)."""

from repro.study import case_corpus, replay_cases
from repro.study.cases import HistoricalCase


class TestCorpus:
    def test_four_systems_sampled(self):
        corpus = case_corpus()
        assert set(corpus) == {"storage_a", "apache", "mysql", "openldap"}

    def test_case_ids_unique(self):
        seen = set()
        for cases in case_corpus().values():
            for case in cases:
                assert case.case_id not in seen
                seen.add(case.case_id)

    def test_scope_classification(self):
        case = HistoricalCase("x-1", "x", "p", "d", "range")
        assert case.in_spex_scope
        case = HistoricalCase("x-2", "x", None, "d", "cross_software")
        assert not case.in_spex_scope


class TestReplay:
    def test_avoidable_fractions_in_paper_band(self, evaluation):
        # §4.2: 24%-38% of sampled cases could have been avoided.
        for name, cases in case_corpus().items():
            report = replay_cases(name, cases, evaluation.result(name).spex)
            assert 0.2 <= report.avoidable_fraction <= 0.45, name

    def test_buckets_partition_sample(self, evaluation):
        for name, cases in case_corpus().items():
            report = replay_cases(name, cases, evaluation.result(name).spex)
            assert sum(report.bucket_counts().values()) == report.sampled

    def test_avoidable_requires_live_constraint(self, evaluation):
        # A case naming a parameter SPEX knows nothing about cannot be
        # counted avoidable, whatever its label says.
        fake = [
            HistoricalCase("f-1", "mysql", "no_such_param", "d", "range")
        ]
        report = replay_cases("mysql", fake, evaluation.result("mysql").spex)
        assert report.avoidable == []
        assert len(report.single_sw_incapability) == 1

    def test_storage_avoidable_matches_paper_fraction(self, evaluation):
        cases = case_corpus()["storage_a"]
        report = replay_cases(
            "storage_a", cases, evaluation.result("storage_a").spex
        )
        # 27.6% in the paper; the miniature lands on the same number.
        assert abs(report.avoidable_fraction - 0.276) < 0.02
