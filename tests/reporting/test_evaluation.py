"""Tests for the table renderers and the evaluation driver."""

from repro.reporting.tables import percent, render_table


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table("T", ["a", "long_header"], [["xx", 1], ["y", 22]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        assert "long_header" in lines[2]
        assert len(lines) == 6

    def test_percent(self):
        assert percent(1, 4) == "25.0%"
        assert percent(0, 0) == "n/a"


class TestEvaluationTables:
    def test_table4_hides_confidential_counts(self, evaluation):
        table = evaluation.table4()
        storage_row = next(
            line for line in table.splitlines() if line.startswith("Storage-A")
        )
        assert " - " in storage_row or storage_row.count("-") >= 2

    def test_table5a_totals_add_up(self, evaluation):
        table = evaluation.table5a()
        total_row = next(
            line for line in table.splitlines() if line.startswith("Total")
        )
        numbers = [int(x) for x in total_row.split()[1:]]
        assert numbers[-1] == sum(
            res.campaign.total() for res in evaluation.results()
        )

    def test_table11_reports_all_five_kinds(self, evaluation):
        table = evaluation.table11()
        for header in ("Basic", "Semantic", "Range", "Ctrl dep.", "Value rel."):
            assert header in table

    def test_figures_have_no_placeholders(self, evaluation):
        for text in (
            evaluation.figure3(),
            evaluation.figure5(),
            evaluation.figure6(),
            evaluation.figure7(),
        ):
            assert "<missing" not in text
            assert "<no verdict" not in text

    def test_all_tables_renders_everything(self, evaluation):
        text = evaluation.all_tables()
        for marker in (
            "Table 1:",
            "Table 4:",
            "Table 5(a):",
            "Table 5(b):",
            "Table 6:",
            "Table 7:",
            "Table 8:",
            "Table 9:",
            "Table 10:",
            "Table 11:",
            "Table 12:",
            "Figure 3:",
            "Figure 5:",
            "Figure 6:",
            "Figure 7:",
        ):
            assert marker in text, marker
