"""Tests for the CLI entry point."""

from repro.reporting.cli import main


class TestCli:
    def test_single_section(self, capsys, evaluation):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1:" in out
        assert "OpenLDAP" in out

    def test_multiple_sections(self, capsys, evaluation):
        assert main(["table2", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 2:" in out and "Table 3:" in out

    def test_unknown_section_errors(self, capsys, evaluation):
        assert main(["table99"]) == 2
        err = capsys.readouterr().err
        assert "unknown section" in err
