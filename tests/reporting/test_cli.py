"""Tests for the CLI entry point.

Exit-code contract: 0 success/clean, 1 `check` found errors, 2 usage
mistakes (unknown command, unknown system, unreadable file).
"""

import json

from repro.reporting.cli import main


class TestCli:
    def test_single_section(self, capsys, evaluation):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1:" in out
        assert "OpenLDAP" in out

    def test_multiple_sections(self, capsys, evaluation):
        assert main(["table2", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 2:" in out and "Table 3:" in out

    def test_unknown_section_errors(self, capsys, evaluation):
        assert main(["table99"]) == 2
        err = capsys.readouterr().err
        assert "unknown command" in err
        # The help listing must advertise the pipeline subcommand.
        assert "pipeline" in err

    def test_help_lists_pipeline(self, capsys):
        assert main(["help"]) == 0
        out = capsys.readouterr().out
        assert "pipeline" in out and "table5a" in out

    def test_pipeline_command(self, capsys):
        assert main(["pipeline", "--systems", "apache", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "Pipeline: misconfiguration campaigns across systems" in out
        assert "apache" in out
        assert "campaign cache: 1 hits" in out

    def test_pipeline_unknown_system_errors(self, capsys):
        assert main(["pipeline", "--systems", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown system" in err

    def test_pipeline_json_output(self, capsys):
        assert main(["pipeline", "--systems", "vsftpd", "--json"]) == 0
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["executor"] == "serial"
        assert decoded["systems"][0]["name"] == "vsftpd"
        assert decoded["systems"][0]["misconfigurations_tested"] > 0
        assert set(decoded["cache_stats"]) >= {"inference", "launches"}

    def test_unknown_command_exit_code_and_listing(self, capsys):
        assert main(["bogus-command"]) == 2
        err = capsys.readouterr().err
        assert "unknown command" in err
        # The usage listing names every subcommand family.
        for command in ("pipeline", "check", "fleet", "table5a"):
            assert command in err

    def test_help_exit_code_zero(self, capsys):
        assert main(["help"]) == 0
        out = capsys.readouterr().out
        assert "check" in out and "fleet" in out


class TestCheckCommand:
    def test_clean_config_exits_zero(self, capsys, tmp_path):
        path = tmp_path / "ok.cnf"
        path.write_text("ft_min_word_len = 5\n")
        assert main(["check", "mysql", str(path)]) == 0
        out = capsys.readouterr().out
        assert "no problems found" in out

    def test_bad_config_exits_one_with_fix(self, capsys, tmp_path):
        path = tmp_path / "bad.cnf"
        path.write_text("ft_min_word_len = 99\n")
        assert main(["check", "mysql", str(path)]) == 1
        out = capsys.readouterr().out
        assert "ft_min_word_len" in out and "fix:" in out

    def test_unknown_system_exits_two(self, capsys, tmp_path):
        path = tmp_path / "x.cnf"
        path.write_text("")
        assert main(["check", "bogus", str(path)]) == 2
        err = capsys.readouterr().err
        assert "unknown system" in err and "mysql" in err

    def test_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["check", "mysql", str(tmp_path / "absent.cnf")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_json_output(self, capsys, tmp_path):
        path = tmp_path / "bad.cnf"
        path.write_text("port = 70000\n")
        assert main(["check", "mysql", str(path), "--json"]) == 1
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["flagged"] is True
        assert decoded["diagnostics"][0]["param"] == "port"


class TestFleetCommand:
    def test_fleet_renders_table(self, capsys):
        assert (
            main(
                [
                    "fleet", "--systems", "vsftpd", "--size", "20",
                    "--sample", "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fleet: constraint-checked synthetic user configs" in out
        assert "vsftpd" in out
        assert "interpreter agreement" in out

    def test_fleet_unknown_system_exits_two(self, capsys):
        assert main(["fleet", "--systems", "nope"]) == 2
        assert "unknown system" in capsys.readouterr().err

    def test_fleet_json_output(self, capsys):
        assert (
            main(
                [
                    "fleet", "--systems", "vsftpd,mysql", "--size", "10",
                    "--json",
                ]
            )
            == 0
        )
        decoded = json.loads(capsys.readouterr().out)
        assert decoded["total_configs"] == 20
        assert [s["name"] for s in decoded["systems"]] == [
            "vsftpd",
            "mysql",
        ]
        assert decoded["scores"]["false_positives"] == 0
