"""Tests for the CLI entry point."""

from repro.reporting.cli import main


class TestCli:
    def test_single_section(self, capsys, evaluation):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1:" in out
        assert "OpenLDAP" in out

    def test_multiple_sections(self, capsys, evaluation):
        assert main(["table2", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table 2:" in out and "Table 3:" in out

    def test_unknown_section_errors(self, capsys, evaluation):
        assert main(["table99"]) == 2
        err = capsys.readouterr().err
        assert "unknown command" in err
        # The help listing must advertise the pipeline subcommand.
        assert "pipeline" in err

    def test_help_lists_pipeline(self, capsys):
        assert main(["help"]) == 0
        out = capsys.readouterr().out
        assert "pipeline" in out and "table5a" in out

    def test_pipeline_command(self, capsys):
        assert main(["pipeline", "--systems", "apache", "--repeat", "2"]) == 0
        out = capsys.readouterr().out
        assert "Pipeline: misconfiguration campaigns across systems" in out
        assert "apache" in out
        assert "campaign cache: 1 hits" in out

    def test_pipeline_unknown_system_errors(self, capsys):
        assert main(["pipeline", "--systems", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown system" in err
