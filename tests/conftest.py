"""Shared fixtures: one evaluation run for all integration tests."""

import pytest

from repro.reporting import Evaluation


@pytest.fixture(scope="session")
def evaluation():
    return Evaluation.shared()
